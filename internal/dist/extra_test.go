package dist

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/unifdist/unifdist/internal/rng"
)

func TestDiscretizedGaussian(t *testing.T) {
	g := NewDiscretizedGaussian(100, 50, 10)
	total := 0.0
	for i := 0; i < g.N(); i++ {
		total += g.Prob(i)
	}
	if math.Abs(total-1) > 1e-12 {
		t.Fatalf("mass %v", total)
	}
	// Peak at the mean, symmetric-ish, decaying tails.
	if g.Prob(50) <= g.Prob(40) || g.Prob(50) <= g.Prob(60) {
		t.Error("not peaked at the mean")
	}
	if g.Prob(0) >= g.Prob(30) {
		t.Error("tails not decaying")
	}
	assertPanics(t, func() { NewDiscretizedGaussian(0, 0, 1) }, "n=0")
	assertPanics(t, func() { NewDiscretizedGaussian(10, 0, 0) }, "sigma=0")
}

func TestMixture(t *testing.T) {
	u := NewUniform(10)
	p := NewPointMassMixture(10, 0, 1)
	m, err := NewMixture(u, p, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Element 0: 0.5·0.1 + 0.5·1.0 = 0.55; others 0.05.
	if math.Abs(m.Prob(0)-0.55) > 1e-12 {
		t.Errorf("Prob(0) = %v", m.Prob(0))
	}
	if math.Abs(m.Prob(5)-0.05) > 1e-12 {
		t.Errorf("Prob(5) = %v", m.Prob(5))
	}
	if _, err := NewMixture(NewUniform(3), NewUniform(4), 0.5); err == nil {
		t.Error("mismatched domains accepted")
	}
	if _, err := NewMixture(u, p, 1.5); err == nil {
		t.Error("w>1 accepted")
	}
}

func TestMixtureExtremes(t *testing.T) {
	u := NewUniform(6)
	z := NewZipf(6, 2)
	m1, err := NewMixture(u, z, 1)
	if err != nil {
		t.Fatal(err)
	}
	if L1(m1, u) > 1e-12 {
		t.Error("w=1 mixture should equal the first component")
	}
	m0, err := NewMixture(u, z, 0)
	if err != nil {
		t.Fatal(err)
	}
	if L1(m0, z) > 1e-12 {
		t.Error("w=0 mixture should equal the second component")
	}
}

func TestEstimateCollisionProbabilityUnbiased(t *testing.T) {
	// Average of the estimator over many sample sets ≈ true χ.
	n := 64
	d := NewTwoBump(n, 0.8, 3)
	want := CollisionProbability(d)
	r := rng.New(5)
	const trials, s = 3000, 30
	sum := 0.0
	for i := 0; i < trials; i++ {
		sum += EstimateCollisionProbability(SampleN(d, s, r))
	}
	got := sum / trials
	if math.Abs(got-want)/want > 0.1 {
		t.Fatalf("mean estimate %v, true χ %v", got, want)
	}
}

func TestEstimateCollisionProbabilityEdges(t *testing.T) {
	if EstimateCollisionProbability(nil) != 0 {
		t.Error("empty sample should estimate 0")
	}
	if EstimateCollisionProbability([]int{1}) != 0 {
		t.Error("single sample should estimate 0")
	}
	if got := EstimateCollisionProbability([]int{2, 2}); got != 1 {
		t.Errorf("identical pair estimates %v, want 1", got)
	}
}

func TestEstimateL1FromUniform(t *testing.T) {
	// Exact for a deterministic histogram: n=4, samples hit elements 0,0,1,1.
	got := EstimateL1FromUniform(4, []int{0, 0, 1, 1})
	// Empirical = (1/2, 1/2, 0, 0); L1 = 2·|1/2−1/4| + 2·|0−1/4| = 1.
	if math.Abs(got-1) > 1e-12 {
		t.Fatalf("plug-in L1 = %v, want 1", got)
	}
	if EstimateL1FromUniform(10, nil) != 0 {
		t.Error("empty sample should estimate 0")
	}
}

func TestEstimateDistanceLowerBoundBehaviour(t *testing.T) {
	r := rng.New(7)
	n := 1 << 10
	// On uniform with few samples, the certified distance is ~0 usually.
	u := NewUniform(n)
	zeroish := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		if EstimateDistanceLowerBound(n, SampleN(u, 16, r)) == 0 {
			zeroish++
		}
	}
	if zeroish < trials/2 {
		t.Errorf("uniform certified nonzero distance in %d/%d trials", trials-zeroish, trials)
	}
	// On a point-mass-heavy distribution with many samples, it certifies a
	// large distance.
	p := NewPointMassMixture(n, 0, 0.8)
	est := EstimateDistanceLowerBound(n, SampleN(p, 500, r))
	if est < 1 {
		t.Errorf("heavy point mass certified only %v", est)
	}
}

func TestEntropy(t *testing.T) {
	if got := Entropy(NewUniform(8)); math.Abs(got-3) > 1e-12 {
		t.Errorf("H(U₈) = %v, want 3", got)
	}
	point := MustHistogram([]float64{1, 0, 0}, "")
	if got := Entropy(point); math.Abs(got) > 1e-12 {
		t.Errorf("H(point) = %v, want 0", got)
	}
	// Uniform maximizes entropy.
	z := NewZipf(8, 1.5)
	if Entropy(z) >= 3 {
		t.Error("Zipf entropy should be below uniform's")
	}
}

func TestSupport(t *testing.T) {
	if got := Support(NewUniform(7)); got != 7 {
		t.Errorf("support %d, want 7", got)
	}
	if got := Support(NewHalfSupport(10)); got != 5 {
		t.Errorf("half support %d, want 5", got)
	}
}

func TestSampleIntoMatchesSampleN(t *testing.T) {
	f := func(seed uint64, sRaw uint8) bool {
		s := int(sRaw%20) + 1
		d := NewUniform(50)
		a := SampleN(d, s, rng.New(seed))
		b := make([]int, s)
		SampleInto(d, b, rng.New(seed))
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
