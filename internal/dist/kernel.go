package dist

import "github.com/unifdist/unifdist/internal/rng"

// This file holds the hot-path sampling kernels. Every experiment table is a
// Monte-Carlo sweep whose inner loop draws millions of samples; going through
// Distribution.Sample costs an interface dispatch per draw. Distributions
// that matter in the experiment hot path (Uniform, TwoBump, Histogram)
// implement BatchSampler with a concrete tight loop instead, and the generic
// SampleInto entry point dispatches once per batch rather than once per
// sample.
//
// Every kernel consumes the generator exactly as the scalar Sample method
// does, so for a fixed seed the sample stream is identical whichever path
// runs — batch sampling is a pure speedup, never a behavioural change.

// BatchSampler is implemented by distributions that can fill a buffer of
// i.i.d. samples without per-sample interface dispatch. Implementations must
// draw from r exactly as len(dst) successive Sample calls would.
type BatchSampler interface {
	// SampleInto fills dst with i.i.d. samples using r.
	SampleInto(dst []int, r *rng.RNG)
}

// SampleInto fills buf with i.i.d. samples from d, avoiding both the
// allocation of SampleN and — when d implements BatchSampler — the
// per-sample interface dispatch of the generic loop.
func SampleInto(d Distribution, buf []int, r *rng.RNG) {
	if b, ok := d.(BatchSampler); ok {
		b.SampleInto(buf, r)
		return
	}
	for i := range buf {
		buf[i] = d.Sample(r)
	}
}

// SampleInto implements BatchSampler: a tight loop of direct Uint64n calls.
func (u Uniform) SampleInto(dst []int, r *rng.RNG) {
	n := uint64(u.n)
	for i := range dst {
		dst[i] = int(r.Uint64n(n))
	}
}

// SampleInto implements BatchSampler with the pair-then-heavy draw of Sample
// inlined; the heavy-pick cutoff (1+ε)/2 is hoisted out of the loop.
func (t *TwoBump) SampleInto(dst []int, r *rng.RNG) {
	half := uint64(t.n / 2)
	cut := (1 + t.eps) / 2
	sign := t.sign
	for i := range dst {
		pair := int(r.Uint64n(half))
		pickHeavy := r.Float64() < cut
		if pickHeavy == sign[pair] {
			dst[i] = 2 * pair
		} else {
			dst[i] = 2*pair + 1
		}
	}
}

// SampleInto implements BatchSampler: the alias-table lookup of Sample in a
// concrete loop.
func (h *Histogram) SampleInto(dst []int, r *rng.RNG) {
	n := uint64(len(h.p))
	cut, alias := h.cut, h.alias
	for i := range dst {
		j := int(r.Uint64n(n))
		if r.Float64() < cut[j] {
			dst[i] = j
		} else {
			dst[i] = alias[j]
		}
	}
}
