package dist

import (
	"fmt"
	"math"
)

// This file holds the secondary distribution constructors and the
// sample-based estimators used by the examples and the experiment harness.

// NewDiscretizedGaussian returns a Gaussian N(mean, sigma²) discretized
// onto {0, …, n−1} (mass outside the range is clipped onto the edge bins'
// integral). It models the "measurements subject to Gaussian noise"
// scenario from the paper's introduction.
func NewDiscretizedGaussian(n int, mean, sigma float64) *Histogram {
	if n <= 0 {
		panic("dist: NewDiscretizedGaussian requires n > 0")
	}
	if sigma <= 0 {
		panic("dist: NewDiscretizedGaussian requires sigma > 0")
	}
	p := make([]float64, n)
	for i := range p {
		d := (float64(i) - mean) / sigma
		p[i] = math.Exp(-d * d / 2)
	}
	return MustHistogram(p, fmt.Sprintf("gaussian(n=%d,µ=%.3g,σ=%.3g)", n, mean, sigma))
}

// NewMixture returns w·a + (1−w)·b for distributions on the same domain.
func NewMixture(a, b Distribution, w float64) (*Histogram, error) {
	if a.N() != b.N() {
		return nil, fmt.Errorf("dist: mixture over mismatched domains %d and %d", a.N(), b.N())
	}
	if w < 0 || w > 1 {
		return nil, fmt.Errorf("dist: mixture weight %v outside [0, 1]", w)
	}
	p := make([]float64, a.N())
	for i := range p {
		p[i] = w*a.Prob(i) + (1-w)*b.Prob(i)
	}
	return NewHistogram(p, fmt.Sprintf("mix(%.3g·%s + %.3g·%s)", w, a.Name(), 1-w, b.Name()))
}

// EstimateCollisionProbability returns the unbiased collision-probability
// estimator χ̂ = (# colliding pairs)/C(s,2) from a sample multiset. Its
// expectation is exactly χ(µ) = Σ µ(i)².
func EstimateCollisionProbability(samples []int) float64 {
	s := len(samples)
	if s < 2 {
		return 0
	}
	pairs := float64(s) * float64(s-1) / 2
	return float64(CountCollisions(samples)) / pairs
}

// EstimateL1FromUniform returns the plug-in estimate of the L1 distance
// between the sampled distribution and U(n): Σ_i |N_i/s − 1/n|. It is
// biased upward for s ≪ n (pure sampling noise inflates it); see the
// EmpiricalTV tester for the quantitative behaviour.
func EstimateL1FromUniform(n int, samples []int) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := float64(len(samples))
	u := 1 / float64(n)
	counts := make(map[int]int, len(samples))
	for _, v := range samples {
		counts[v]++
	}
	total := 0.0
	for _, c := range counts {
		total += math.Abs(float64(c)/s - u)
	}
	total += float64(n-len(counts)) * u
	return total
}

// EstimateDistanceLowerBound converts the collision estimator into a
// conservative distance estimate via Lemma 3.2's converse: χ(µ) ≥
// (1+ε²)/n implies ε ≤ √(n·χ − 1), so ε̂ = √(max(0, n·χ̂ − 1)) lower-bounds
// the distance scale the collision statistic can certify.
func EstimateDistanceLowerBound(n int, samples []int) float64 {
	chi := EstimateCollisionProbability(samples)
	v := float64(n)*chi - 1
	if v <= 0 {
		return 0
	}
	return math.Sqrt(v)
}

// Entropy returns the Shannon entropy of d in bits.
func Entropy(d Distribution) float64 {
	total := 0.0
	for i := 0; i < d.N(); i++ {
		p := d.Prob(i)
		if p > 0 {
			total -= p * math.Log2(p)
		}
	}
	return total
}

// Support returns the number of elements with positive probability.
func Support(d Distribution) int {
	count := 0
	for i := 0; i < d.N(); i++ {
		if d.Prob(i) > 0 {
			count++
		}
	}
	return count
}
