// Package dist provides the discrete distributions, samplers and distance
// measures used by the uniformity testers.
//
// Every distribution lives on the domain {0, …, n−1} (the paper's
// {1, …, n}, zero-indexed). Distributions are immutable after construction
// and safe for concurrent sampling as long as each goroutine uses its own
// *rng.RNG.
//
// The package includes the canonical ε-far instance family from the
// uniformity-testing literature — the "two-bump" (Paninski) distribution
// that perturbs paired elements by ±ε/n — as well as Zipf, point-mass
// mixtures and arbitrary histograms with O(1) alias-method sampling.
package dist

import (
	"fmt"
	"math"

	"github.com/unifdist/unifdist/internal/rng"
)

// Distribution is a discrete probability distribution on {0, …, N()−1}.
type Distribution interface {
	// N returns the domain size n.
	N() int
	// Prob returns the probability of element i. It panics if i is out of
	// range.
	Prob(i int) float64
	// Sample draws one element using r.
	Sample(r *rng.RNG) int
	// Name returns a short human-readable description for tables and logs.
	Name() string
}

// SampleN draws s i.i.d. samples from d using r. It dispatches through
// SampleInto, so distributions implementing BatchSampler pay no per-sample
// interface call.
func SampleN(d Distribution, s int, r *rng.RNG) []int {
	out := make([]int, s)
	SampleInto(d, out, r)
	return out
}

// Uniform is the uniform distribution U(n) on {0, …, n−1}.
type Uniform struct {
	n int
}

// NewUniform returns U(n). It panics if n <= 0.
func NewUniform(n int) Uniform {
	if n <= 0 {
		panic("dist: NewUniform requires n > 0")
	}
	return Uniform{n: n}
}

// N returns the domain size.
func (u Uniform) N() int { return u.n }

// Prob returns 1/n.
func (u Uniform) Prob(i int) float64 {
	checkIndex(i, u.n)
	return 1 / float64(u.n)
}

// Sample draws a uniform element.
func (u Uniform) Sample(r *rng.RNG) int { return r.Intn(u.n) }

// Name implements Distribution.
func (u Uniform) Name() string { return fmt.Sprintf("uniform(n=%d)", u.n) }

// TwoBump is the paired-perturbation ("Paninski") distribution: the domain
// is split into n/2 consecutive pairs, and within each pair one element has
// probability (1+ε)/n and the other (1−ε)/n. Its L1 distance from uniform
// is exactly ε, making it the canonical ε-far instance; the direction of
// each perturbation is chosen by a sign pattern fixed at construction.
type TwoBump struct {
	n    int
	eps  float64
	sign []bool // sign[j] == true means pair j's first element gets +ε/n
}

// NewTwoBump returns a two-bump distribution on an even domain of size n
// with distance parameter eps ∈ (0, 1], using a uniformly random sign
// pattern derived from seed.
func NewTwoBump(n int, eps float64, seed uint64) *TwoBump {
	if n <= 0 || n%2 != 0 {
		panic("dist: NewTwoBump requires even n > 0")
	}
	if eps <= 0 || eps > 1 {
		panic("dist: NewTwoBump requires eps in (0, 1]")
	}
	r := rng.New(seed)
	sign := make([]bool, n/2)
	for j := range sign {
		sign[j] = r.Bool()
	}
	return &TwoBump{n: n, eps: eps, sign: sign}
}

// N returns the domain size.
func (t *TwoBump) N() int { return t.n }

// Epsilon returns the construction's distance parameter.
func (t *TwoBump) Epsilon() float64 { return t.eps }

// Prob returns (1±ε)/n depending on the pair's sign.
func (t *TwoBump) Prob(i int) float64 {
	checkIndex(i, t.n)
	up := t.sign[i/2] == (i%2 == 0)
	if up {
		return (1 + t.eps) / float64(t.n)
	}
	return (1 - t.eps) / float64(t.n)
}

// Sample draws an element: first a uniform pair, then the heavy element of
// the pair with probability (1+ε)/2.
func (t *TwoBump) Sample(r *rng.RNG) int {
	pair := r.Intn(t.n / 2)
	heavyFirst := t.sign[pair]
	pickHeavy := r.Float64() < (1+t.eps)/2
	if pickHeavy == heavyFirst {
		return 2 * pair
	}
	return 2*pair + 1
}

// Name implements Distribution.
func (t *TwoBump) Name() string {
	return fmt.Sprintf("twobump(n=%d,eps=%.3g)", t.n, t.eps)
}

// Histogram is an arbitrary distribution given by an explicit probability
// vector, sampled in O(1) with Vose's alias method.
type Histogram struct {
	p     []float64
	alias []int
	cut   []float64
	name  string
}

// NewHistogram returns a distribution with the given probability vector.
// The vector is copied and normalized; it must be non-empty, non-negative,
// and have positive total mass.
func NewHistogram(p []float64, name string) (*Histogram, error) {
	if len(p) == 0 {
		return nil, fmt.Errorf("dist: empty histogram")
	}
	total := 0.0
	for i, v := range p {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("dist: invalid mass %v at index %d", v, i)
		}
		total += v
	}
	if total <= 0 {
		return nil, fmt.Errorf("dist: zero total mass")
	}
	n := len(p)
	h := &Histogram{
		p:     make([]float64, n),
		alias: make([]int, n),
		cut:   make([]float64, n),
		name:  name,
	}
	for i, v := range p {
		h.p[i] = v / total
	}
	// Vose's alias method.
	scaled := make([]float64, n)
	var small, large []int
	for i, v := range h.p {
		scaled[i] = v * float64(n)
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		h.cut[s] = scaled[s]
		h.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		h.cut[i] = 1
		h.alias[i] = i
	}
	for _, i := range small {
		h.cut[i] = 1
		h.alias[i] = i
	}
	return h, nil
}

// MustHistogram is NewHistogram that panics on error, for literals in tests
// and examples.
func MustHistogram(p []float64, name string) *Histogram {
	h, err := NewHistogram(p, name)
	if err != nil {
		panic(err)
	}
	return h
}

// N returns the domain size.
func (h *Histogram) N() int { return len(h.p) }

// Prob returns the normalized probability of element i.
func (h *Histogram) Prob(i int) float64 {
	checkIndex(i, len(h.p))
	return h.p[i]
}

// Sample draws an element in O(1) via the alias table.
func (h *Histogram) Sample(r *rng.RNG) int {
	i := r.Intn(len(h.p))
	if r.Float64() < h.cut[i] {
		return i
	}
	return h.alias[i]
}

// Name implements Distribution.
func (h *Histogram) Name() string {
	if h.name != "" {
		return h.name
	}
	return fmt.Sprintf("histogram(n=%d)", len(h.p))
}

// NewZipf returns a Zipf distribution on {0, …, n−1} with exponent s > 0:
// Prob(i) ∝ 1/(i+1)^s. Heavy-tailed and far from uniform for large s, it is
// used as a "realistic skew" instance in the examples and experiments.
func NewZipf(n int, s float64) *Histogram {
	if n <= 0 {
		panic("dist: NewZipf requires n > 0")
	}
	if s <= 0 {
		panic("dist: NewZipf requires s > 0")
	}
	p := make([]float64, n)
	for i := range p {
		p[i] = math.Pow(float64(i+1), -s)
	}
	return MustHistogram(p, fmt.Sprintf("zipf(n=%d,s=%.3g)", n, s))
}

// NewPointMassMixture returns (1−w)·U(n) + w·δ_target: uniform with an extra
// point mass of weight w at element target. Its L1 distance from uniform is
// 2w(1 − 1/n).
func NewPointMassMixture(n, target int, w float64) *Histogram {
	if target < 0 || target >= n {
		panic("dist: point mass target out of range")
	}
	if w < 0 || w > 1 {
		panic("dist: mixture weight outside [0, 1]")
	}
	p := make([]float64, n)
	base := (1 - w) / float64(n)
	for i := range p {
		p[i] = base
	}
	p[target] += w
	return MustHistogram(p, fmt.Sprintf("uniform+pointmass(n=%d,w=%.3g)", n, w))
}

// NewHalfSupport returns the uniform distribution on the first ⌈n/2⌉
// elements of a domain of size n. Its L1 distance from U(n) is ~1.
func NewHalfSupport(n int) *Histogram {
	if n <= 1 {
		panic("dist: NewHalfSupport requires n > 1")
	}
	p := make([]float64, n)
	half := (n + 1) / 2
	for i := 0; i < half; i++ {
		p[i] = 1
	}
	return MustHistogram(p, fmt.Sprintf("halfsupport(n=%d)", n))
}

// L1FromUniform returns Σ_i |µ(i) − 1/n|, the L1 distance between d and the
// uniform distribution on its domain.
func L1FromUniform(d Distribution) float64 {
	n := d.N()
	u := 1 / float64(n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += math.Abs(d.Prob(i) - u)
	}
	return total
}

// L1 returns the L1 distance Σ_i |p(i) − q(i)| between two distributions on
// the same domain. It panics if the domains differ.
func L1(p, q Distribution) float64 {
	if p.N() != q.N() {
		panic("dist: L1 over mismatched domains")
	}
	total := 0.0
	for i := 0; i < p.N(); i++ {
		total += math.Abs(p.Prob(i) - q.Prob(i))
	}
	return total
}

// TV returns the total-variation distance, L1/2.
func TV(p, q Distribution) float64 { return L1(p, q) / 2 }

// CollisionProbability returns χ(µ) = Σ_i µ(i)², the probability that two
// independent samples collide. Lemma 3.2: χ(µ) > (1+ε²)/n whenever µ is
// ε-far from uniform.
func CollisionProbability(d Distribution) float64 {
	total := 0.0
	for i := 0; i < d.N(); i++ {
		v := d.Prob(i)
		total += v * v
	}
	return total
}

// EmpiricalHistogram counts occurrences of each domain element in samples.
func EmpiricalHistogram(n int, samples []int) []int {
	counts := make([]int, n)
	for _, s := range samples {
		counts[s]++
	}
	return counts
}

// HasCollision reports whether samples contains two equal elements. This is
// the single-collision statistic Z of Section 3.1. It sorts a copy; hot
// loops should use CollisionScratch.HasCollision, which allocates nothing.
func HasCollision(samples []int) bool {
	switch len(samples) {
	case 0, 1:
		return false
	case 2:
		return samples[0] == samples[1]
	}
	cp := sortedCopy(samples)
	for i := 1; i < len(cp); i++ {
		if cp[i] == cp[i-1] {
			return true
		}
	}
	return false
}

// CountCollisions returns the number of colliding pairs Σ_i C(c_i, 2) over
// the sample multiset — the statistic of the Paninski-style collision
// counting baseline. It sorts a copy; hot loops should use
// CollisionScratch.CountCollisions, which allocates nothing.
func CountCollisions(samples []int) int {
	if len(samples) < 2 {
		return 0
	}
	return countSortedCollisions(sortedCopy(samples))
}

func checkIndex(i, n int) {
	if i < 0 || i >= n {
		panic(fmt.Sprintf("dist: index %d out of domain [0, %d)", i, n))
	}
}
