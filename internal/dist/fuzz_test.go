package dist

import (
	"testing"

	"github.com/unifdist/unifdist/internal/rng"
)

// FuzzNewHistogram ensures arbitrary mass vectors either error out or
// produce a normalized distribution whose sampler stays in range.
func FuzzNewHistogram(f *testing.F) {
	f.Add([]byte{1, 2, 3})
	f.Add([]byte{0, 0, 0})
	f.Add([]byte{255})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) == 0 || len(raw) > 64 {
			return
		}
		p := make([]float64, len(raw))
		for i, v := range raw {
			p[i] = float64(v)
		}
		h, err := NewHistogram(p, "fuzz")
		if err != nil {
			return
		}
		total := 0.0
		for i := 0; i < h.N(); i++ {
			pr := h.Prob(i)
			if pr < 0 || pr > 1 {
				t.Fatalf("Prob(%d) = %v", i, pr)
			}
			total += pr
		}
		if total < 0.999 || total > 1.001 {
			t.Fatalf("mass %v", total)
		}
		r := rng.New(1)
		for i := 0; i < 50; i++ {
			if v := h.Sample(r); v < 0 || v >= h.N() {
				t.Fatalf("sample %d out of range", v)
			}
		}
	})
}
