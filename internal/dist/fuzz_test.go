package dist

import (
	"testing"

	"github.com/unifdist/unifdist/internal/rng"
)

// FuzzCollisionScratch cross-checks every CollisionScratch strategy
// against a reference map implementation: for random sample vectors, the
// epoch-stamp path (small domains), the sort-buffer path (domains above
// maxStampDomain), and the package-level entry points must all agree on
// collision presence, colliding-pair counts, and distinct counts. The
// scratch is reused across rounds inside one fuzz invocation, so epoch
// reuse and buffer growth are exercised too.
func FuzzCollisionScratch(f *testing.F) {
	f.Add(uint64(1), uint16(8), uint8(16), uint8(3))
	f.Add(uint64(42), uint16(1), uint8(1), uint8(1))
	f.Add(uint64(7), uint16(1000), uint8(255), uint8(5))
	f.Add(uint64(0), uint16(2), uint8(64), uint8(2))
	f.Fuzz(func(t *testing.T, seed uint64, domainRaw uint16, countRaw uint8, rounds uint8) {
		n := int(domainRaw)%4096 + 1
		count := int(countRaw)
		sc := NewCollisionScratch()
		r := rng.New(seed)
		for round := 0; round < int(rounds)%8+1; round++ {
			samples := make([]int, count)
			for i := range samples {
				samples[i] = r.Intn(n)
			}
			// Reference: count colliding pairs Σ C(c_i, 2) with a map.
			freq := map[int]int{}
			for _, s := range samples {
				freq[s]++
			}
			wantPairs := 0
			for _, c := range freq {
				wantPairs += c * (c - 1) / 2
			}
			wantHas := wantPairs > 0
			wantDistinct := len(freq)

			// Small domain: stamp strategy.
			if got := sc.HasCollision(n, samples); got != wantHas {
				t.Fatalf("stamp HasCollision(n=%d, %v) = %v, want %v", n, samples, got, wantHas)
			}
			if got := sc.CountCollisions(n, samples); got != wantPairs {
				t.Fatalf("stamp CountCollisions(n=%d, %v) = %d, want %d", n, samples, got, wantPairs)
			}
			if got := sc.CountDistinct(n, samples); got != wantDistinct {
				t.Fatalf("stamp CountDistinct(n=%d, %v) = %d, want %d", n, samples, got, wantDistinct)
			}

			// Large domain: the same samples are valid in a domain above the
			// stamp bound, forcing the sort-buffer strategy.
			big := maxStampDomain + n
			if got := sc.HasCollision(big, samples); got != wantHas {
				t.Fatalf("sort HasCollision(n=%d, %v) = %v, want %v", big, samples, got, wantHas)
			}
			if got := sc.CountCollisions(big, samples); got != wantPairs {
				t.Fatalf("sort CountCollisions(n=%d, %v) = %d, want %d", big, samples, got, wantPairs)
			}
			if got := sc.CountDistinct(big, samples); got != wantDistinct {
				t.Fatalf("sort CountDistinct(n=%d, %v) = %d, want %d", big, samples, got, wantDistinct)
			}

			// Package-level entry points and the nil scratch must agree too.
			if got := HasCollision(samples); got != wantHas {
				t.Fatalf("HasCollision(%v) = %v, want %v", samples, got, wantHas)
			}
			if got := CountCollisions(samples); got != wantPairs {
				t.Fatalf("CountCollisions(%v) = %d, want %d", samples, got, wantPairs)
			}
			var nilSc *CollisionScratch
			if got := nilSc.CountCollisions(n, samples); got != wantPairs {
				t.Fatalf("nil scratch CountCollisions(%v) = %d, want %d", samples, got, wantPairs)
			}
		}
	})
}

// FuzzNewHistogram ensures arbitrary mass vectors either error out or
// produce a normalized distribution whose sampler stays in range.
func FuzzNewHistogram(f *testing.F) {
	f.Add([]byte{1, 2, 3})
	f.Add([]byte{0, 0, 0})
	f.Add([]byte{255})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) == 0 || len(raw) > 64 {
			return
		}
		p := make([]float64, len(raw))
		for i, v := range raw {
			p[i] = float64(v)
		}
		h, err := NewHistogram(p, "fuzz")
		if err != nil {
			return
		}
		total := 0.0
		for i := 0; i < h.N(); i++ {
			pr := h.Prob(i)
			if pr < 0 || pr > 1 {
				t.Fatalf("Prob(%d) = %v", i, pr)
			}
			total += pr
		}
		if total < 0.999 || total > 1.001 {
			t.Fatalf("mass %v", total)
		}
		r := rng.New(1)
		for i := 0; i < 50; i++ {
			if v := h.Sample(r); v < 0 || v >= h.N() {
				t.Fatalf("sample %d out of range", v)
			}
		}
	})
}
