package simnet

import (
	"encoding/binary"
	"errors"
	"strings"
	"testing"

	"github.com/unifdist/unifdist/internal/graph"
)

// floodMax floods the maximum ID for a fixed number of rounds, then halts.
// After g.Diameter() rounds every node must know the global maximum.
type floodMax struct {
	ctx    *Context
	best   int
	rounds int
	limit  int
}

func (f *floodMax) Init(ctx *Context) {
	f.ctx = ctx
	f.best = ctx.ID
}

func (f *floodMax) Round(in []PortMessage) ([]PortMessage, bool) {
	for _, m := range in {
		if v := int(binary.BigEndian.Uint64(m.Payload)); v > f.best {
			f.best = v
		}
	}
	f.rounds++
	if f.rounds > f.limit {
		return nil, true
	}
	payload := make([]byte, 8)
	binary.BigEndian.PutUint64(payload, uint64(f.best))
	out := make([]PortMessage, f.ctx.Degree)
	for p := 0; p < f.ctx.Degree; p++ {
		out[p] = PortMessage{Port: p, Payload: payload}
	}
	return out, false
}

func TestFloodMaxConverges(t *testing.T) {
	topologies := []*graph.Graph{
		graph.NewLine(12),
		graph.NewRing(9),
		graph.NewStar(8),
		graph.NewGrid(4, 5),
		graph.NewRandomConnected(30, 0.1, 5),
	}
	for _, g := range topologies {
		t.Run(g.Name(), func(t *testing.T) {
			d := g.Diameter()
			nodes := make([]Node, g.N())
			impls := make([]*floodMax, g.N())
			for i := range nodes {
				impls[i] = &floodMax{limit: d + 1}
				nodes[i] = impls[i]
			}
			stats, err := Run(g, nodes, Config{MaxBytesPerMessage: 16, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			want := g.N() - 1 // max vertex index
			for i, impl := range impls {
				if impl.best != want {
					t.Fatalf("node %d learned max %d, want %d", i, impl.best, want)
				}
			}
			if stats.Rounds != d+2 {
				t.Errorf("rounds = %d, want %d", stats.Rounds, d+2)
			}
			if stats.MaxMessageBytes != 8 {
				t.Errorf("max message bytes = %d, want 8", stats.MaxMessageBytes)
			}
		})
	}
}

// silent halts immediately without sending.
type silent struct{}

func (silent) Init(*Context)                             {}
func (silent) Round([]PortMessage) ([]PortMessage, bool) { return nil, true }

// oversized sends a payload larger than any CONGEST limit.
type oversized struct{ ctx *Context }

func (o *oversized) Init(ctx *Context) { o.ctx = ctx }
func (o *oversized) Round([]PortMessage) ([]PortMessage, bool) {
	if o.ctx.Degree == 0 {
		return nil, true
	}
	return []PortMessage{{Port: 0, Payload: make([]byte, 1024)}}, true
}

func TestBandwidthEnforced(t *testing.T) {
	g := graph.NewLine(2)
	_, err := Run(g, []Node{&oversized{}, silent{}}, Config{MaxBytesPerMessage: 16, Seed: 1})
	if !errors.Is(err, ErrBandwidthExceeded) {
		t.Fatalf("err = %v, want ErrBandwidthExceeded", err)
	}
}

func TestBandwidthUnlimitedInLOCAL(t *testing.T) {
	g := graph.NewLine(2)
	_, err := Run(g, []Node{&oversized{}, silent{}}, Config{Seed: 1})
	if err != nil {
		t.Fatalf("LOCAL model rejected big message: %v", err)
	}
}

// badPort sends on a port it does not have.
type badPort struct{}

func (badPort) Init(*Context) {}
func (badPort) Round([]PortMessage) ([]PortMessage, bool) {
	return []PortMessage{{Port: 5, Payload: []byte{1}}}, true
}

func TestInvalidPortRejected(t *testing.T) {
	g := graph.NewLine(2)
	_, err := Run(g, []Node{badPort{}, silent{}}, Config{Seed: 1})
	if err == nil || !strings.Contains(err.Error(), "invalid port") {
		t.Fatalf("err = %v, want invalid port", err)
	}
}

// doubleSend sends twice on port 0 in one round.
type doubleSend struct{}

func (doubleSend) Init(*Context) {}
func (doubleSend) Round([]PortMessage) ([]PortMessage, bool) {
	return []PortMessage{
		{Port: 0, Payload: []byte{1}},
		{Port: 0, Payload: []byte{2}},
	}, true
}

func TestDuplicatePortRejected(t *testing.T) {
	g := graph.NewLine(2)
	_, err := Run(g, []Node{doubleSend{}, silent{}}, Config{Seed: 1})
	if err == nil || !strings.Contains(err.Error(), "twice on port") {
		t.Fatalf("err = %v, want duplicate-port error", err)
	}
}

// forever never halts.
type forever struct{}

func (forever) Init(*Context)                             {}
func (forever) Round([]PortMessage) ([]PortMessage, bool) { return nil, false }

func TestMaxRoundsAborts(t *testing.T) {
	g := graph.NewLine(3)
	_, err := Run(g, []Node{forever{}, forever{}, forever{}}, Config{MaxRounds: 10, Seed: 1})
	if !errors.Is(err, ErrMaxRounds) {
		t.Fatalf("err = %v, want ErrMaxRounds", err)
	}
}

func TestNodeCountMismatch(t *testing.T) {
	g := graph.NewLine(3)
	if _, err := Run(g, []Node{silent{}}, Config{Seed: 1}); err == nil {
		t.Fatal("node/vertex mismatch accepted")
	}
}

// pingPong node 0 sends one ping; node 1 replies; both count messages.
type pingPong struct {
	ctx      *Context
	received int
	starter  bool
	rounds   int
}

func (p *pingPong) Init(ctx *Context) { p.ctx = ctx }
func (p *pingPong) Round(in []PortMessage) ([]PortMessage, bool) {
	p.received += len(in)
	p.rounds++
	switch {
	case p.starter && p.rounds == 1:
		return []PortMessage{{Port: 0, Payload: []byte("ping")}}, false
	case !p.starter && p.received > 0:
		return []PortMessage{{Port: 0, Payload: []byte("pong")}}, true
	case p.starter && p.received > 0:
		return nil, true
	}
	return nil, false
}

func TestMessageAccounting(t *testing.T) {
	g := graph.NewLine(2)
	a := &pingPong{starter: true}
	b := &pingPong{}
	stats, err := Run(g, []Node{a, b}, Config{MaxBytesPerMessage: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Messages != 2 {
		t.Errorf("messages = %d, want 2", stats.Messages)
	}
	if stats.Bytes != 8 {
		t.Errorf("bytes = %d, want 8", stats.Bytes)
	}
	if a.received != 1 || b.received != 1 {
		t.Errorf("received: a=%d b=%d, want 1 each", a.received, b.received)
	}
}

// rngProbe records the first random draw of each node.
type rngProbe struct {
	draw uint64
}

func (r *rngProbe) Init(ctx *Context) { r.draw = ctx.RNG.Uint64() }
func (r *rngProbe) Round([]PortMessage) ([]PortMessage, bool) {
	return nil, true
}

func TestPrivateRNGsDeterministicAndDistinct(t *testing.T) {
	run := func() []uint64 {
		g := graph.NewRing(5)
		nodes := make([]Node, 5)
		probes := make([]*rngProbe, 5)
		for i := range nodes {
			probes[i] = &rngProbe{}
			nodes[i] = probes[i]
		}
		if _, err := Run(g, nodes, Config{Seed: 42}); err != nil {
			t.Fatal(err)
		}
		out := make([]uint64, 5)
		for i, p := range probes {
			out[i] = p.draw
		}
		return out
	}
	first, second := run(), run()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("node %d RNG not deterministic across runs", i)
		}
		for j := i + 1; j < len(first); j++ {
			if first[i] == first[j] {
				t.Fatalf("nodes %d and %d share RNG output", i, j)
			}
		}
	}
}

func TestMessagesToHaltedNodesDropped(t *testing.T) {
	// Node 1 halts in round 1; node 0 sends to it in round 2. The send is
	// silently dropped and the run still terminates.
	g := graph.NewLine(2)
	sender := &lateSender{}
	stats, err := Run(g, []Node{sender, silent{}}, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Messages != 0 {
		t.Errorf("messages delivered to halted node counted: %d", stats.Messages)
	}
}

type lateSender struct{ rounds int }

func (l *lateSender) Init(*Context) {}
func (l *lateSender) Round([]PortMessage) ([]PortMessage, bool) {
	l.rounds++
	if l.rounds == 2 {
		return []PortMessage{{Port: 0, Payload: []byte{9}}}, true
	}
	return nil, l.rounds > 2
}

func BenchmarkFloodRing(b *testing.B) {
	g := graph.NewRing(100)
	d := g.Diameter()
	for i := 0; i < b.N; i++ {
		nodes := make([]Node, g.N())
		for j := range nodes {
			nodes[j] = &floodMax{limit: d + 1}
		}
		if _, err := Run(g, nodes, Config{MaxBytesPerMessage: 16, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
