package simnet

import (
	"errors"
	"testing"

	"github.com/unifdist/unifdist/internal/graph"
)

// These tests pin the retained reference engine's failure behaviour
// directly: RunChannel must surface the same typed sentinel errors as the
// flat engine — errors.Is-matchable, with identical message text and
// identical partially-accumulated stats — so a caller that falls back to
// the reference engine sees indistinguishable error semantics.

func TestRunChannelBandwidthExceeded(t *testing.T) {
	g := graph.NewLine(2)
	mk := func() []Node { return []Node{&oversized{}, silent{}} }
	cfg := Config{MaxBytesPerMessage: 16, Seed: 1}

	stats, err := RunChannel(g, mk(), cfg)
	if !errors.Is(err, ErrBandwidthExceeded) {
		t.Fatalf("RunChannel err = %v, want ErrBandwidthExceeded", err)
	}
	flatStats, flatErr := Run(g, mk(), cfg)
	if !errors.Is(flatErr, ErrBandwidthExceeded) {
		t.Fatalf("flat engine err = %v, want ErrBandwidthExceeded", flatErr)
	}
	if err.Error() != flatErr.Error() {
		t.Errorf("error text diverges:\n  channel: %v\n  flat:    %v", err, flatErr)
	}
	if stats != flatStats {
		t.Errorf("partial stats diverge: channel=%+v flat=%+v", stats, flatStats)
	}
}

func TestRunChannelMaxRounds(t *testing.T) {
	const limit = 7
	g := graph.NewRing(5)
	mk := func() []Node {
		nodes := make([]Node, g.N())
		for i := range nodes {
			nodes[i] = forever{}
		}
		return nodes
	}
	cfg := Config{MaxRounds: limit, Seed: 1}

	stats, err := RunChannel(g, mk(), cfg)
	if !errors.Is(err, ErrMaxRounds) {
		t.Fatalf("RunChannel err = %v, want ErrMaxRounds", err)
	}
	if stats.Rounds != limit {
		t.Errorf("RunChannel ran %d rounds, want the full limit %d", stats.Rounds, limit)
	}
	flatStats, flatErr := Run(g, mk(), cfg)
	if !errors.Is(flatErr, ErrMaxRounds) {
		t.Fatalf("flat engine err = %v, want ErrMaxRounds", flatErr)
	}
	if err.Error() != flatErr.Error() {
		t.Errorf("error text diverges:\n  channel: %v\n  flat:    %v", err, flatErr)
	}
	if stats != flatStats {
		t.Errorf("partial stats diverge: channel=%+v flat=%+v", stats, flatStats)
	}
}

// TestRunChannelBandwidthTracedStats pins that a bandwidth failure still
// delivers the rounds that completed before the violation to the tracer —
// the reference engine must not drop trace events on the error path.
func TestRunChannelBandwidthTracedStats(t *testing.T) {
	g := graph.NewLine(2)
	tr := &recordingTracer{}
	_, err := RunChannel(g, []Node{&oversized{}, silent{}}, Config{MaxBytesPerMessage: 16, Seed: 1, Tracer: tr})
	if !errors.Is(err, ErrBandwidthExceeded) {
		t.Fatalf("err = %v, want ErrBandwidthExceeded", err)
	}
	if len(tr.events) == 0 {
		t.Fatal("tracer saw no events before the bandwidth violation")
	}
	flatTr := &recordingTracer{}
	_, flatErr := Run(g, []Node{&oversized{}, silent{}}, Config{MaxBytesPerMessage: 16, Seed: 1, Tracer: flatTr})
	if !errors.Is(flatErr, ErrBandwidthExceeded) {
		t.Fatalf("flat err = %v, want ErrBandwidthExceeded", flatErr)
	}
	if len(tr.events) != len(flatTr.events) {
		t.Fatalf("trace lengths diverge on failure: channel=%d flat=%d", len(tr.events), len(flatTr.events))
	}
	for i := range tr.events {
		if tr.events[i] != flatTr.events[i] {
			t.Fatalf("trace diverges at event %d: channel=%q flat=%q", i, tr.events[i], flatTr.events[i])
		}
	}
}
