package simnet

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/unifdist/unifdist/internal/graph"
	"github.com/unifdist/unifdist/internal/obs"
)

func TestSummaryTracerCollects(t *testing.T) {
	g := graph.NewLine(2)
	a := &pingPong{starter: true}
	b := &pingPong{}
	tracer := &SummaryTracer{}
	stats, err := Run(g, []Node{a, b}, Config{Seed: 1, Tracer: tracer})
	if err != nil {
		t.Fatal(err)
	}
	rounds := tracer.Rounds()
	if len(rounds) == 0 {
		t.Fatal("tracer collected nothing")
	}
	totalMsgs, totalHalts, totalBytes := 0, 0, 0
	for _, r := range rounds {
		totalMsgs += r.Messages
		totalHalts += r.Halted
		totalBytes += r.Bytes
	}
	if totalMsgs != stats.Messages {
		t.Errorf("tracer saw %d messages, stats %d", totalMsgs, stats.Messages)
	}
	if int64(totalBytes) != stats.Bytes {
		t.Errorf("tracer saw %d bytes, stats %d", totalBytes, stats.Bytes)
	}
	if totalHalts != g.N() {
		t.Errorf("tracer saw %d halts, want %d", totalHalts, g.N())
	}
	if rounds[0].Active != 2 {
		t.Errorf("round 1 active = %d, want 2", rounds[0].Active)
	}
}

func TestSummaryTracerDump(t *testing.T) {
	g := graph.NewRing(6)
	nodes := make([]Node, 6)
	for i := range nodes {
		nodes[i] = &floodMax{limit: 4}
	}
	tracer := &SummaryTracer{}
	if _, err := Run(g, nodes, Config{Seed: 2, Tracer: tracer}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tracer.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "round") || !strings.Contains(out, "msgs") {
		t.Fatalf("dump missing header: %s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) < 2 {
		t.Fatalf("dump has no data rows: %s", out)
	}
}

func TestTracerRoundsReturnsCopy(t *testing.T) {
	tracer := &SummaryTracer{}
	tracer.OnRoundStart(1, 5)
	tracer.OnMessage(1, 0, 1, []byte{1, 2})
	rounds := tracer.Rounds()
	rounds[0].Messages = 999
	if tracer.Rounds()[0].Messages == 999 {
		t.Fatal("Rounds exposed internal state")
	}
}

func TestNilTracerIsFine(t *testing.T) {
	g := graph.NewLine(2)
	if _, err := Run(g, []Node{silent{}, silent{}}, Config{Seed: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryTracerUnseenRoundIsImplicit(t *testing.T) {
	tracer := &SummaryTracer{}
	// OnMessage/OnHalt with no prior OnRoundStart must create an explicit
	// Implicit summary, not miscount under a bogus row.
	tracer.OnMessage(3, 0, 1, []byte{1, 2, 3})
	tracer.OnHalt(3, 0)
	rounds := tracer.Rounds()
	if len(rounds) != 1 {
		t.Fatalf("got %d summaries, want 1", len(rounds))
	}
	r := rounds[0]
	if r.Round != 3 || !r.Implicit || r.Messages != 1 || r.Bytes != 3 || r.Halted != 1 || r.Active != 0 {
		t.Errorf("implicit summary = %+v", r)
	}
	// A late OnRoundStart for the same round upgrades it in place.
	tracer.OnRoundStart(3, 7)
	rounds = tracer.Rounds()
	if len(rounds) != 1 || rounds[0].Implicit || rounds[0].Active != 7 || rounds[0].Messages != 1 {
		t.Errorf("upgraded summary = %+v", rounds[0])
	}
}

func TestSummaryTracerOutOfOrderEvents(t *testing.T) {
	tracer := &SummaryTracer{}
	tracer.OnRoundStart(1, 4)
	tracer.OnRoundStart(2, 4)
	// Event for round 1 arriving after round 2 started must update round 1,
	// not append a duplicate row.
	tracer.OnMessage(1, 0, 1, []byte{9})
	tracer.OnHalt(1, 0)
	rounds := tracer.Rounds()
	if len(rounds) != 2 {
		t.Fatalf("got %d summaries, want 2", len(rounds))
	}
	if rounds[0].Round != 1 || rounds[0].Messages != 1 || rounds[0].Halted != 1 || rounds[0].Active != 4 {
		t.Errorf("round 1 summary = %+v", rounds[0])
	}
	if rounds[1].Messages != 0 {
		t.Errorf("round 2 absorbed round 1 traffic: %+v", rounds[1])
	}
}

func TestMetricsTracerRecords(t *testing.T) {
	g := graph.NewLine(2)
	reg := obs.NewRegistry()
	tracer := NewMetricsTracer(reg, 16)
	stats, err := Run(g, []Node{&pingPong{starter: true}, &pingPong{}}, Config{
		Seed: 1, Tracer: tracer, MaxBytesPerMessage: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot()
	if got := s.Counters["simnet.messages"]; got != int64(stats.Messages) {
		t.Errorf("simnet.messages = %d, stats %d", got, stats.Messages)
	}
	if got := s.Counters["simnet.bytes"]; got != stats.Bytes {
		t.Errorf("simnet.bytes = %d, stats %d", got, stats.Bytes)
	}
	if got := s.Counters["simnet.rounds"]; got != int64(stats.Rounds) {
		t.Errorf("simnet.rounds = %d, stats %d", got, stats.Rounds)
	}
	if got := s.Counters["simnet.halts"]; got != 2 {
		t.Errorf("simnet.halts = %d, want 2", got)
	}
	h := s.Histograms["simnet.msg_bytes"]
	if h.Count != int64(stats.Messages) {
		t.Errorf("msg_bytes histogram count = %d, want %d", h.Count, stats.Messages)
	}
	if nm := s.Histograms["simnet.node_msgs"]; nm.Count == 0 {
		t.Error("node_msgs histogram empty after OnRunEnd")
	}
	if util := s.Gauges["simnet.bandwidth_util"]; util <= 0 || util > 1 {
		t.Errorf("bandwidth_util = %g, want (0, 1]", util)
	}
}

func TestJSONLTracerEvents(t *testing.T) {
	g := graph.NewRing(6)
	nodes := make([]Node, 6)
	for i := range nodes {
		nodes[i] = &floodMax{limit: 4}
	}
	var buf bytes.Buffer
	journal := obs.NewJournal(&buf)
	stats, err := Run(g, nodes, Config{Seed: 2, Tracer: NewJSONLTracer(journal, "test", 16)})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < 2 {
		t.Fatalf("journal too short: %q", buf.String())
	}
	var msgs int
	var sawEnd bool
	for _, line := range lines {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("unparseable journal line %q: %v", line, err)
		}
		switch ev["kind"] {
		case "sim_round":
			if ev["run"] != "test" {
				t.Errorf("round event run = %v", ev["run"])
			}
			msgs += int(ev["msgs"].(float64))
		case "sim_run_end":
			sawEnd = true
			if int(ev["rounds"].(float64)) != stats.Rounds {
				t.Errorf("run_end rounds = %v, want %d", ev["rounds"], stats.Rounds)
			}
		default:
			t.Errorf("unexpected event kind %v", ev["kind"])
		}
	}
	if msgs != stats.Messages {
		t.Errorf("journal rounds account for %d messages, stats %d", msgs, stats.Messages)
	}
	if !sawEnd {
		t.Error("no sim_run_end event")
	}
}

func TestMultiTracer(t *testing.T) {
	summary := &SummaryTracer{}
	reg := obs.NewRegistry()
	metrics := NewMetricsTracer(reg, 0)
	combined := MultiTracer(nil, summary, metrics)
	if combined == nil {
		t.Fatal("MultiTracer dropped live tracers")
	}
	g := graph.NewLine(2)
	stats, err := Run(g, []Node{&pingPong{starter: true}, &pingPong{}}, Config{Seed: 3, Tracer: combined})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, r := range summary.Rounds() {
		total += r.Messages
	}
	if total != stats.Messages {
		t.Errorf("summary saw %d messages, stats %d", total, stats.Messages)
	}
	if got := reg.Counter("simnet.messages").Value(); got != int64(stats.Messages) {
		t.Errorf("metrics saw %d messages, stats %d", got, stats.Messages)
	}
	if MultiTracer(nil, nil) != nil {
		t.Error("MultiTracer of nils not nil")
	}
	if MultiTracer(summary) != Tracer(summary) {
		t.Error("single-tracer MultiTracer not pass-through")
	}
}
