package simnet

import (
	"bytes"
	"strings"
	"testing"

	"github.com/unifdist/unifdist/internal/graph"
)

func TestSummaryTracerCollects(t *testing.T) {
	g := graph.NewLine(2)
	a := &pingPong{starter: true}
	b := &pingPong{}
	tracer := &SummaryTracer{}
	stats, err := Run(g, []Node{a, b}, Config{Seed: 1, Tracer: tracer})
	if err != nil {
		t.Fatal(err)
	}
	rounds := tracer.Rounds()
	if len(rounds) == 0 {
		t.Fatal("tracer collected nothing")
	}
	totalMsgs, totalHalts, totalBytes := 0, 0, 0
	for _, r := range rounds {
		totalMsgs += r.Messages
		totalHalts += r.Halted
		totalBytes += r.Bytes
	}
	if totalMsgs != stats.Messages {
		t.Errorf("tracer saw %d messages, stats %d", totalMsgs, stats.Messages)
	}
	if int64(totalBytes) != stats.Bytes {
		t.Errorf("tracer saw %d bytes, stats %d", totalBytes, stats.Bytes)
	}
	if totalHalts != g.N() {
		t.Errorf("tracer saw %d halts, want %d", totalHalts, g.N())
	}
	if rounds[0].Active != 2 {
		t.Errorf("round 1 active = %d, want 2", rounds[0].Active)
	}
}

func TestSummaryTracerDump(t *testing.T) {
	g := graph.NewRing(6)
	nodes := make([]Node, 6)
	for i := range nodes {
		nodes[i] = &floodMax{limit: 4}
	}
	tracer := &SummaryTracer{}
	if _, err := Run(g, nodes, Config{Seed: 2, Tracer: tracer}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tracer.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "round") || !strings.Contains(out, "msgs") {
		t.Fatalf("dump missing header: %s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) < 2 {
		t.Fatalf("dump has no data rows: %s", out)
	}
}

func TestTracerRoundsReturnsCopy(t *testing.T) {
	tracer := &SummaryTracer{}
	tracer.OnRoundStart(1, 5)
	tracer.OnMessage(1, 0, 1, []byte{1, 2})
	rounds := tracer.Rounds()
	rounds[0].Messages = 999
	if tracer.Rounds()[0].Messages == 999 {
		t.Fatal("Rounds exposed internal state")
	}
}

func TestNilTracerIsFine(t *testing.T) {
	g := graph.NewLine(2)
	if _, err := Run(g, []Node{silent{}, silent{}}, Config{Seed: 1}); err != nil {
		t.Fatal(err)
	}
}
