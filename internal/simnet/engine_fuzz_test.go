package simnet

import (
	"testing"

	"github.com/unifdist/unifdist/internal/graph"
)

// scripted is a fuzz-driven node program: its per-round behaviour (which
// ports to use, payload sizes, lifetime, and an optional protocol
// violation) derives from the fuzzer's bytes and the node's private RNG,
// so any divergence between the two engines — including on error paths —
// is a pure engine bug.
type scripted struct {
	ctx      *Context
	lifetime int
	sendMask byte
	badRound int // 1-based round to sin on; 0 = law-abiding
	badKind  byte
	rounds   int
	sum      uint64
}

func (s *scripted) Init(ctx *Context) {
	s.ctx = ctx
	s.lifetime = 1 + int(ctx.RNG.Uint64n(5))
}

func (s *scripted) Round(in []PortMessage) ([]PortMessage, bool) {
	for _, m := range in {
		s.sum = s.sum*263 + uint64(m.Port) + 1
		for _, b := range m.Payload {
			s.sum = s.sum*31 + uint64(b)
		}
	}
	s.rounds++
	if s.rounds == s.badRound {
		switch s.badKind % 3 {
		case 0: // invalid port
			return []PortMessage{{Port: s.ctx.Degree + 3, Payload: []byte{1}}}, false
		case 1: // duplicate port
			if s.ctx.Degree > 0 {
				return []PortMessage{
					{Port: 0, Payload: []byte{1}},
					{Port: 0, Payload: []byte{2}},
				}, false
			}
		case 2: // oversized payload
			if s.ctx.Degree > 0 {
				return []PortMessage{{Port: 0, Payload: make([]byte, 64)}}, false
			}
		}
	}
	if s.rounds > s.lifetime {
		return nil, true
	}
	var out []PortMessage
	for p := 0; p < s.ctx.Degree; p++ {
		draw := s.ctx.RNG.Uint64()
		if s.sendMask&(1<<(uint(p)%8)) == 0 && draw%4 != 0 {
			continue
		}
		payload := make([]byte, 1+draw%5)
		for i := range payload {
			payload[i] = byte(draw >> (7 * uint(i)))
		}
		out = append(out, PortMessage{Port: p, Payload: payload})
	}
	return out, false
}

// fuzzGraph builds a small deterministic graph from fuzz bytes: a spanning
// path (keeping every node reachable) plus extra edges from the bits.
func fuzzGraph(n int, bits []byte) *graph.Graph {
	g := graph.New(n, "fuzz")
	for i := 0; i+1 < n; i++ {
		_ = g.AddEdge(i, i+1)
	}
	bi := 0
	for u := 0; u < n; u++ {
		for v := u + 2; v < n; v++ {
			if len(bits) == 0 {
				return g
			}
			if bits[bi%len(bits)]&(1<<(uint(bi)%8)) != 0 {
				_ = g.AddEdge(u, v)
			}
			bi++
		}
	}
	return g
}

// FuzzEngineEquivalence feeds random small graphs and node scripts —
// including deliberate protocol violations — through both engines and
// requires identical stats, traces and errors at several worker counts.
func FuzzEngineEquivalence(f *testing.F) {
	f.Add(uint8(5), uint64(1), []byte{0x5a}, uint8(0), uint8(0))
	f.Add(uint8(8), uint64(42), []byte{0xff, 0x0f}, uint8(2), uint8(1))
	f.Add(uint8(3), uint64(7), []byte{}, uint8(1), uint8(2))
	f.Fuzz(func(t *testing.T, nRaw uint8, seed uint64, edgeBits []byte, badRound, badKind uint8) {
		n := 2 + int(nRaw%7) // 2..8 nodes
		g := fuzzGraph(n, edgeBits)
		mk := func() Node {
			return &scripted{
				sendMask: byte(seed),
				badRound: int(badRound % 8), // 0 disables
				badKind:  badKind,
			}
		}
		cfg := Config{MaxBytesPerMessage: 16, MaxRounds: 48, Seed: seed}
		flat, legacy, ftr, ltr, ferr, lerr := runEngines(g, mk, cfg)
		if (ferr == nil) != (lerr == nil) || (ferr != nil && ferr.Error() != lerr.Error()) {
			t.Fatalf("errors differ: flat=%v legacy=%v", ferr, lerr)
		}
		if flat != legacy {
			t.Fatalf("stats differ: flat=%+v legacy=%+v", flat, legacy)
		}
		if len(ftr.events) != len(ltr.events) {
			t.Fatalf("trace lengths differ: %d vs %d", len(ftr.events), len(ltr.events))
		}
		for i := range ftr.events {
			if ftr.events[i] != ltr.events[i] {
				t.Fatalf("trace diverges at %d: %q vs %q", i, ftr.events[i], ltr.events[i])
			}
		}
		// Worker-count invariance of the flat engine on the same script.
		for _, workers := range []int{2, 5} {
			tr := &recordingTracer{}
			nodes := make([]Node, g.N())
			for i := range nodes {
				nodes[i] = mk()
			}
			wcfg := cfg
			wcfg.Tracer, wcfg.Workers = tr, workers
			stats, err := Run(g, nodes, wcfg)
			if (err == nil) != (ferr == nil) || (err != nil && err.Error() != ferr.Error()) {
				t.Fatalf("workers=%d error %v, want %v", workers, err, ferr)
			}
			if stats != flat {
				t.Fatalf("workers=%d stats %+v, want %+v", workers, stats, flat)
			}
			for i := range tr.events {
				if tr.events[i] != ftr.events[i] {
					t.Fatalf("workers=%d trace diverges at %d: %q vs %q", workers, i, tr.events[i], ftr.events[i])
				}
			}
		}
	})
}
