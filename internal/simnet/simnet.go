// Package simnet is a synchronous message-passing network simulator for the
// CONGEST and LOCAL models.
//
// Execution proceeds in lock-step rounds, as in the standard models: in each
// round every node receives the messages its neighbors sent in the previous
// round, performs local computation, and emits at most one message per
// incident edge. Run executes rounds on a flat, deterministic engine (see
// engine.go): CSR-flattened topology tables compiled once per graph,
// double-buffered inbox arenas, and a bounded worker pool that executes
// node programs in chunks while all routing and tracing stay serial in
// node-index order — so Stats, tracer event streams and node states are
// byte-identical at any Config.Workers value. The legacy goroutine-per-node
// coordinator is retained as RunChannel for differential testing and
// benchmarking.
//
// The CONGEST bandwidth restriction is enforced by Config.MaxBytesPerMessage
// (a message of B bits per edge per round; 0 disables the limit, giving the
// LOCAL model). Nodes see only local information: their identifier, degree,
// the number of nodes k, a private RNG, and port-numbered neighbors.
package simnet

import (
	"errors"
	"fmt"
	"sync"

	"github.com/unifdist/unifdist/internal/graph"
	"github.com/unifdist/unifdist/internal/rng"
)

// ErrBandwidthExceeded is returned when a node sends a message larger than
// the configured CONGEST limit.
var ErrBandwidthExceeded = errors.New("simnet: message exceeds bandwidth limit")

// ErrMaxRounds is returned when the simulation hits Config.MaxRounds before
// all nodes halt.
var ErrMaxRounds = errors.New("simnet: round limit reached before termination")

// PortMessage is a message on a specific port (edge index in the node's
// neighbor list).
type PortMessage struct {
	// Port is the index of the incident edge: for outgoing messages, the
	// destination; for incoming, the source.
	Port int
	// Payload is the message body; its length is charged against the
	// bandwidth limit. Run copies payloads on delivery, so a sender may
	// reuse its buffer as soon as Round returns and a receiver mutating a
	// delivered payload cannot corrupt anyone else's inbox; delivered
	// payloads are only valid for the round they arrive in.
	Payload []byte
}

// Context gives a node its local view of the network.
type Context struct {
	// ID is the node's unique identifier.
	ID int
	// Degree is the number of incident edges (ports 0 … Degree−1).
	Degree int
	// NumNodes is k, known to all nodes as in the paper's protocols.
	NumNodes int
	// RNG is the node's private randomness.
	RNG *rng.RNG
}

// Node is a synchronous state machine. Implementations must not retain or
// mutate the inbox slice across rounds.
type Node interface {
	// Init is called once before the first round.
	Init(ctx *Context)
	// Round consumes the messages delivered this round and returns the
	// messages to send (at most one per port) plus whether the node halts.
	// A halted node sends nothing afterwards and receives nothing.
	Round(in []PortMessage) (out []PortMessage, done bool)
}

// Config controls the simulation model.
type Config struct {
	// MaxBytesPerMessage is the CONGEST bandwidth B in bytes per edge per
	// round; 0 means unlimited (LOCAL model).
	MaxBytesPerMessage int
	// MaxRounds aborts runaway protocols; 0 means a default of 10·k + 1000
	// rounds.
	MaxRounds int
	// Seed derives every node's private RNG.
	Seed uint64
	// Tracer, if non-nil, observes rounds, messages and halts.
	Tracer Tracer
	// Workers bounds the flat engine's node-execution pool; 0 means
	// GOMAXPROCS. Stats, tracer streams and node states are byte-identical
	// at any value. RunChannel ignores it (one goroutine per node).
	Workers int
}

// Stats summarizes an execution.
type Stats struct {
	// Rounds is the number of rounds executed until all nodes halted.
	Rounds int
	// Messages is the total number of messages delivered.
	Messages int
	// Bytes is the total payload volume delivered.
	Bytes int64
	// MaxMessageBytes is the largest single payload observed (the realized
	// CONGEST bandwidth).
	MaxMessageBytes int
}

// Run executes nodes on topology g until every node halts. nodes[i] is
// placed at vertex i; node IDs are the vertex indices. It returns an error
// if a node sends to an invalid or duplicate port, exceeds the bandwidth
// limit, or the round limit is reached.
//
// Run uses the flat round engine (engine.go): deterministic at any
// Config.Workers value, with Stats, tracer event streams and node states
// byte-identical to the legacy RunChannel engine.
func Run(g *graph.Graph, nodes []Node, cfg Config) (Stats, error) {
	return runFlat(g, nodes, cfg)
}

// RunChannel is the legacy goroutine-per-node engine: every node runs in
// its own goroutine and a coordinator exchanges inbox/outbox pairs over
// channels each round. It is retained as the differential-testing reference
// for the flat engine and as the BenchmarkRunChannelRef baseline; new code
// should call Run. Unlike Run, delivered payloads alias the sender's
// slices, and Config.Workers is ignored.
func RunChannel(g *graph.Graph, nodes []Node, cfg Config) (Stats, error) {
	k := g.N()
	if len(nodes) != k {
		return Stats{}, fmt.Errorf("simnet: %d nodes for %d vertices", len(nodes), k)
	}
	maxRounds := cfg.MaxRounds
	if maxRounds == 0 {
		maxRounds = 10*k + 1000
	}

	root := rng.New(cfg.Seed)
	workers := make([]*worker, k)
	for v := 0; v < k; v++ {
		w := &worker{
			node:  nodes[v],
			in:    make(chan []PortMessage, 1),
			out:   make(chan roundResult, 1),
			index: v,
		}
		ctx := &Context{
			ID:       v,
			Degree:   g.Degree(v),
			NumNodes: k,
			RNG:      root.Split(),
		}
		nodes[v].Init(ctx)
		workers[v] = w
	}

	var wg sync.WaitGroup
	wg.Add(k)
	for _, w := range workers {
		go func(w *worker) {
			defer wg.Done()
			w.loop()
		}(w)
	}
	defer func() {
		for _, w := range workers {
			close(w.in)
		}
		wg.Wait()
	}()

	// Precompute reverse port lookup: ports[v][u] is u's port index at v.
	ports := make([]map[int]int, k)
	for v := 0; v < k; v++ {
		nb := g.Neighbors(v)
		ports[v] = make(map[int]int, len(nb))
		for i, u := range nb {
			ports[v][u] = i
		}
	}

	var stats Stats
	inboxes := make([][]PortMessage, k)
	active := make([]bool, k)
	remaining := k
	for v := range active {
		active[v] = true
	}

	for stats.Rounds < maxRounds && remaining > 0 {
		stats.Rounds++
		if cfg.Tracer != nil {
			cfg.Tracer.OnRoundStart(stats.Rounds, remaining)
		}
		// Dispatch inboxes to active nodes.
		for v, w := range workers {
			if !active[v] {
				continue
			}
			w.in <- inboxes[v]
			inboxes[v] = nil
		}
		// Collect outboxes and route.
		for v, w := range workers {
			if !active[v] {
				continue
			}
			res := <-w.out
			if res.done {
				active[v] = false
				remaining--
				if cfg.Tracer != nil {
					cfg.Tracer.OnHalt(stats.Rounds, v)
				}
			}
			seen := make(map[int]bool, len(res.out))
			for _, m := range res.out {
				if m.Port < 0 || m.Port >= g.Degree(v) {
					return stats, fmt.Errorf("simnet: node %d sent on invalid port %d", v, m.Port)
				}
				if seen[m.Port] {
					return stats, fmt.Errorf("simnet: node %d sent twice on port %d in one round", v, m.Port)
				}
				seen[m.Port] = true
				if cfg.MaxBytesPerMessage > 0 && len(m.Payload) > cfg.MaxBytesPerMessage {
					return stats, fmt.Errorf("%w: node %d sent %d bytes (limit %d)",
						ErrBandwidthExceeded, v, len(m.Payload), cfg.MaxBytesPerMessage)
				}
				dst := g.Neighbors(v)[m.Port]
				if !active[dst] {
					continue // delivered into the void: dst already halted
				}
				dstPort := ports[dst][v]
				inboxes[dst] = append(inboxes[dst], PortMessage{Port: dstPort, Payload: m.Payload})
				if cfg.Tracer != nil {
					cfg.Tracer.OnMessage(stats.Rounds, v, dst, m.Payload)
				}
				stats.Messages++
				stats.Bytes += int64(len(m.Payload))
				if len(m.Payload) > stats.MaxMessageBytes {
					stats.MaxMessageBytes = len(m.Payload)
				}
			}
		}
	}
	if remaining > 0 {
		return stats, fmt.Errorf("%w: %d nodes still active after %d rounds", ErrMaxRounds, remaining, stats.Rounds)
	}
	if o, ok := cfg.Tracer.(RunEndObserver); ok {
		o.OnRunEnd(stats)
	}
	return stats, nil
}

type roundResult struct {
	out  []PortMessage
	done bool
}

type worker struct {
	node  Node
	in    chan []PortMessage
	out   chan roundResult
	index int
}

func (w *worker) loop() {
	for in := range w.in {
		out, done := w.node.Round(in)
		w.out <- roundResult{out: out, done: done}
		if done {
			return
		}
	}
}
