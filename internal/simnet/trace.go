package simnet

import (
	"fmt"
	"io"

	"github.com/unifdist/unifdist/internal/obs"
)

// Tracer observes a simulation. Implementations must be fast; OnMessage is
// called for every delivered message. Tracers run on the coordinator
// goroutine, so no synchronization is needed.
type Tracer interface {
	// OnRoundStart is called before a round's inboxes are dispatched.
	OnRoundStart(round, activeNodes int)
	// OnMessage is called for each delivered message.
	OnMessage(round, from, to int, payload []byte)
	// OnHalt is called when a node halts.
	OnHalt(round, node int)
}

// RunEndObserver is an optional Tracer extension: Run invokes OnRunEnd with
// the final statistics after every node has halted, letting tracers flush
// buffered state (the last round's JSONL event, per-node histograms).
type RunEndObserver interface {
	OnRunEnd(stats Stats)
}

// RoundSummary aggregates one round's traffic.
type RoundSummary struct {
	// Round is the 1-based round number.
	Round int
	// Active is the number of nodes that executed the round.
	Active int
	// Messages and Bytes count the round's delivered traffic.
	Messages int
	Bytes    int
	// Halted is the number of nodes that halted during the round.
	Halted int
	// Implicit marks a summary synthesized by an OnMessage/OnHalt for a
	// round that never announced itself via OnRoundStart (out-of-order or
	// partial traces); its Active count is unknown and reported as 0.
	Implicit bool
}

// SummaryTracer collects per-round summaries. Events for a round that was
// never announced via OnRoundStart are attributed to an explicit Implicit
// summary for that round rather than silently miscounted, and events
// arriving after a later round has started still update their own round.
type SummaryTracer struct {
	rounds  []RoundSummary
	byRound map[int]int // round number → index into rounds
}

var _ Tracer = (*SummaryTracer)(nil)

// OnRoundStart implements Tracer.
func (s *SummaryTracer) OnRoundStart(round, active int) {
	cur := s.current(round)
	cur.Active = active
	cur.Implicit = false
}

// OnMessage implements Tracer.
func (s *SummaryTracer) OnMessage(round, _, _ int, payload []byte) {
	cur := s.current(round)
	cur.Messages++
	cur.Bytes += len(payload)
}

// OnHalt implements Tracer.
func (s *SummaryTracer) OnHalt(round, _ int) {
	s.current(round).Halted++
}

// current returns the summary for round, creating an Implicit one if the
// round was never started.
func (s *SummaryTracer) current(round int) *RoundSummary {
	if s.byRound == nil {
		s.byRound = map[int]int{}
	}
	if i, ok := s.byRound[round]; ok {
		return &s.rounds[i]
	}
	s.byRound[round] = len(s.rounds)
	s.rounds = append(s.rounds, RoundSummary{Round: round, Implicit: true})
	return &s.rounds[len(s.rounds)-1]
}

// Rounds returns the collected summaries in first-seen order.
func (s *SummaryTracer) Rounds() []RoundSummary {
	out := make([]RoundSummary, len(s.rounds))
	copy(out, s.rounds)
	return out
}

// Dump writes a compact per-round table, merging quiet stretches.
func (s *SummaryTracer) Dump(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "round  active  msgs  bytes  halted"); err != nil {
		return err
	}
	for _, r := range s.rounds {
		if r.Messages == 0 && r.Halted == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "%5d  %6d  %4d  %5d  %6d\n",
			r.Round, r.Active, r.Messages, r.Bytes, r.Halted); err != nil {
			return err
		}
	}
	return nil
}

// multiTracer fans events out to several tracers.
type multiTracer struct {
	tracers []Tracer
}

// MultiTracer combines tracers into one; nil entries are dropped. It
// returns nil when no tracer remains, so the result can be assigned to
// Config.Tracer directly.
func MultiTracer(tracers ...Tracer) Tracer {
	var live []Tracer
	for _, t := range tracers {
		if t != nil {
			live = append(live, t)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return &multiTracer{tracers: live}
}

func (m *multiTracer) OnRoundStart(round, active int) {
	for _, t := range m.tracers {
		t.OnRoundStart(round, active)
	}
}

func (m *multiTracer) OnMessage(round, from, to int, payload []byte) {
	for _, t := range m.tracers {
		t.OnMessage(round, from, to, payload)
	}
}

func (m *multiTracer) OnHalt(round, node int) {
	for _, t := range m.tracers {
		t.OnHalt(round, node)
	}
}

func (m *multiTracer) OnRunEnd(stats Stats) {
	for _, t := range m.tracers {
		if o, ok := t.(RunEndObserver); ok {
			o.OnRunEnd(stats)
		}
	}
}

// MetricsTracer feeds a simulation's traffic into an obs.Registry under the
// "simnet." metric namespace:
//
//	simnet.rounds            counter: rounds executed
//	simnet.messages          counter: messages delivered
//	simnet.bytes             counter: payload bytes delivered
//	simnet.halts             counter: node halts
//	simnet.msg_bytes         histogram: per-message payload size
//	simnet.node_msgs         histogram: per-node sent-message counts (at run end)
//	simnet.bandwidth_util    gauge: mean bytes per message / CONGEST budget (at run end)
//	simnet.last_rounds       gauge: rounds of the most recent run
//
// It is cheap enough to stay attached across EstimateError-style trial
// loops; a nil registry makes every update a no-op.
type MetricsTracer struct {
	rounds   *obs.Counter
	messages *obs.Counter
	bytes    *obs.Counter
	halts    *obs.Counter
	msgBytes *obs.Histogram
	nodeMsgs *obs.Histogram
	util     *obs.Gauge
	lastR    *obs.Gauge
	budget   int
	perNode  map[int]int64
}

var _ Tracer = (*MetricsTracer)(nil)
var _ RunEndObserver = (*MetricsTracer)(nil)

// NewMetricsTracer builds a tracer recording into reg. budget is the
// CONGEST bytes-per-message cap used for the bandwidth-utilization gauge
// (0 = unlimited, utilization not reported).
func NewMetricsTracer(reg *obs.Registry, budget int) *MetricsTracer {
	return &MetricsTracer{
		rounds:   reg.Counter("simnet.rounds"),
		messages: reg.Counter("simnet.messages"),
		bytes:    reg.Counter("simnet.bytes"),
		halts:    reg.Counter("simnet.halts"),
		msgBytes: reg.Histogram("simnet.msg_bytes", obs.BytesBuckets()),
		nodeMsgs: reg.Histogram("simnet.node_msgs", obs.BytesBuckets()),
		util:     reg.Gauge("simnet.bandwidth_util"),
		lastR:    reg.Gauge("simnet.last_rounds"),
		budget:   budget,
		perNode:  map[int]int64{},
	}
}

// OnRoundStart implements Tracer.
func (m *MetricsTracer) OnRoundStart(_, _ int) {
	m.rounds.Inc()
}

// OnMessage implements Tracer.
func (m *MetricsTracer) OnMessage(_, from, _ int, payload []byte) {
	m.messages.Inc()
	m.bytes.Add(int64(len(payload)))
	m.msgBytes.Observe(int64(len(payload)))
	m.perNode[from]++
}

// OnHalt implements Tracer.
func (m *MetricsTracer) OnHalt(_, _ int) {
	m.halts.Inc()
}

// OnRunEnd implements RunEndObserver: flushes per-node message counts into
// the simnet.node_msgs histogram and reports bandwidth utilization.
func (m *MetricsTracer) OnRunEnd(stats Stats) {
	for _, n := range m.perNode {
		m.nodeMsgs.Observe(n)
	}
	m.perNode = map[int]int64{}
	m.lastR.Set(float64(stats.Rounds))
	if m.budget > 0 && stats.Messages > 0 {
		m.util.Set(float64(stats.Bytes) / float64(stats.Messages) / float64(m.budget))
	}
}

// SimRoundEvent is one round's traffic in the JSONL journal.
type SimRoundEvent struct {
	Kind     string  `json:"kind"` // "sim_round"
	Run      string  `json:"run,omitempty"`
	Round    int     `json:"round"`
	Active   int     `json:"active"`
	Messages int     `json:"msgs"`
	Bytes    int     `json:"bytes"`
	Halts    int     `json:"halts"`
	MaxMsgB  int     `json:"max_msg_bytes,omitempty"`
	Util     float64 `json:"bandwidth_util,omitempty"`
}

// SimRunEndEvent closes a simulation in the JSONL journal.
type SimRunEndEvent struct {
	Kind     string `json:"kind"` // "sim_run_end"
	Run      string `json:"run,omitempty"`
	Rounds   int    `json:"rounds"`
	Messages int    `json:"msgs"`
	Bytes    int64  `json:"bytes"`
	MaxMsgB  int    `json:"max_msg_bytes"`
}

// JSONLTracer streams per-round simulation events into an obs.Journal.
// Rounds with no traffic and no halts are elided, keeping journals compact
// on deep topologies. The final round is flushed by OnRunEnd, which
// simnet.Run invokes automatically.
type JSONLTracer struct {
	journal *obs.Journal
	run     string
	budget  int
	cur     SimRoundEvent
	started bool
}

var _ Tracer = (*JSONLTracer)(nil)
var _ RunEndObserver = (*JSONLTracer)(nil)

// NewJSONLTracer builds a tracer writing to journal. run labels the
// simulation (experiment ID or tool name); budget is the CONGEST
// bytes-per-message cap for per-round utilization (0 = unlimited).
func NewJSONLTracer(journal *obs.Journal, run string, budget int) *JSONLTracer {
	return &JSONLTracer{journal: journal, run: run, budget: budget}
}

// OnRoundStart implements Tracer.
func (t *JSONLTracer) OnRoundStart(round, active int) {
	t.flush()
	t.cur = SimRoundEvent{Kind: "sim_round", Run: t.run, Round: round, Active: active}
	t.started = true
}

// OnMessage implements Tracer.
func (t *JSONLTracer) OnMessage(round, _, _ int, payload []byte) {
	t.ensure(round)
	t.cur.Messages++
	t.cur.Bytes += len(payload)
	if len(payload) > t.cur.MaxMsgB {
		t.cur.MaxMsgB = len(payload)
	}
}

// OnHalt implements Tracer.
func (t *JSONLTracer) OnHalt(round, _ int) {
	t.ensure(round)
	t.cur.Halts++
}

// ensure guards against events for rounds that never announced themselves.
func (t *JSONLTracer) ensure(round int) {
	if !t.started || t.cur.Round != round {
		t.flush()
		t.cur = SimRoundEvent{Kind: "sim_round", Run: t.run, Round: round}
		t.started = true
	}
}

func (t *JSONLTracer) flush() {
	if !t.started || (t.cur.Messages == 0 && t.cur.Halts == 0) {
		return
	}
	if t.budget > 0 && t.cur.Messages > 0 {
		t.cur.Util = float64(t.cur.Bytes) / float64(t.cur.Messages) / float64(t.budget)
	}
	t.journal.Write(t.cur)
	t.started = false
}

// OnRunEnd implements RunEndObserver: flushes the final round and writes
// the run-end summary event.
func (t *JSONLTracer) OnRunEnd(stats Stats) {
	t.flush()
	t.journal.Write(SimRunEndEvent{
		Kind:     "sim_run_end",
		Run:      t.run,
		Rounds:   stats.Rounds,
		Messages: stats.Messages,
		Bytes:    stats.Bytes,
		MaxMsgB:  stats.MaxMessageBytes,
	})
}
