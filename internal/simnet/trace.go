package simnet

import (
	"fmt"
	"io"
)

// Tracer observes a simulation. Implementations must be fast; OnMessage is
// called for every delivered message. Tracers run on the coordinator
// goroutine, so no synchronization is needed.
type Tracer interface {
	// OnRoundStart is called before a round's inboxes are dispatched.
	OnRoundStart(round, activeNodes int)
	// OnMessage is called for each delivered message.
	OnMessage(round, from, to int, payload []byte)
	// OnHalt is called when a node halts.
	OnHalt(round, node int)
}

// RoundSummary aggregates one round's traffic.
type RoundSummary struct {
	// Round is the 1-based round number.
	Round int
	// Active is the number of nodes that executed the round.
	Active int
	// Messages and Bytes count the round's delivered traffic.
	Messages int
	Bytes    int
	// Halted is the number of nodes that halted during the round.
	Halted int
}

// SummaryTracer collects per-round summaries.
type SummaryTracer struct {
	rounds []RoundSummary
}

var _ Tracer = (*SummaryTracer)(nil)

// OnRoundStart implements Tracer.
func (s *SummaryTracer) OnRoundStart(round, active int) {
	s.rounds = append(s.rounds, RoundSummary{Round: round, Active: active})
}

// OnMessage implements Tracer.
func (s *SummaryTracer) OnMessage(round, _, _ int, payload []byte) {
	cur := s.current(round)
	cur.Messages++
	cur.Bytes += len(payload)
}

// OnHalt implements Tracer.
func (s *SummaryTracer) OnHalt(round, _ int) {
	s.current(round).Halted++
}

func (s *SummaryTracer) current(round int) *RoundSummary {
	if len(s.rounds) == 0 || s.rounds[len(s.rounds)-1].Round != round {
		s.rounds = append(s.rounds, RoundSummary{Round: round})
	}
	return &s.rounds[len(s.rounds)-1]
}

// Rounds returns the collected summaries.
func (s *SummaryTracer) Rounds() []RoundSummary {
	out := make([]RoundSummary, len(s.rounds))
	copy(out, s.rounds)
	return out
}

// Dump writes a compact per-round table, merging quiet stretches.
func (s *SummaryTracer) Dump(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "round  active  msgs  bytes  halted"); err != nil {
		return err
	}
	for _, r := range s.rounds {
		if r.Messages == 0 && r.Halted == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "%5d  %6d  %4d  %5d  %6d\n",
			r.Round, r.Active, r.Messages, r.Bytes, r.Halted); err != nil {
			return err
		}
	}
	return nil
}
