package simnet

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/unifdist/unifdist/internal/graph"
)

// recordingTracer captures the full event stream as comparable strings, so
// differential tests can assert the flat engine reproduces the legacy
// engine's trace byte for byte (order included).
type recordingTracer struct {
	events []string
}

func (r *recordingTracer) OnRoundStart(round, active int) {
	r.events = append(r.events, fmt.Sprintf("round %d active=%d", round, active))
}

func (r *recordingTracer) OnMessage(round, from, to int, payload []byte) {
	r.events = append(r.events, fmt.Sprintf("msg r=%d %d->%d %x", round, from, to, payload))
}

func (r *recordingTracer) OnHalt(round, node int) {
	r.events = append(r.events, fmt.Sprintf("halt r=%d node=%d", round, node))
}

func (r *recordingTracer) OnRunEnd(stats Stats) {
	r.events = append(r.events, fmt.Sprintf("end rounds=%d msgs=%d bytes=%d max=%d",
		stats.Rounds, stats.Messages, stats.Bytes, stats.MaxMessageBytes))
}

// chatter is a randomized node program exercising every engine code path:
// each round it sends payloads derived from its private RNG on a
// pseudo-random subset of ports, then halts after a per-node random number
// of rounds. Its behaviour is a pure function of the Context, so two
// engines seeding node RNGs identically must produce identical executions.
type chatter struct {
	ctx      *Context
	lifetime int
	rounds   int
	received int
	checksum uint64
}

func (c *chatter) Init(ctx *Context) {
	c.ctx = ctx
	c.lifetime = 1 + int(ctx.RNG.Uint64n(6))
}

func (c *chatter) Round(in []PortMessage) ([]PortMessage, bool) {
	for _, m := range in {
		c.received++
		for _, b := range m.Payload {
			c.checksum = c.checksum*131 + uint64(b) + uint64(m.Port)
		}
	}
	c.rounds++
	if c.rounds > c.lifetime {
		return nil, true
	}
	var out []PortMessage
	for p := 0; p < c.ctx.Degree; p++ {
		draw := c.ctx.RNG.Uint64()
		if draw%3 == 0 {
			continue // skip this port
		}
		payload := make([]byte, 1+draw%7)
		for i := range payload {
			payload[i] = byte(draw >> (8 * uint(i%8)))
		}
		out = append(out, PortMessage{Port: p, Payload: payload})
	}
	return out, false
}

// diffTopologies is the topology matrix the differential tests sweep, per
// the engine's acceptance criteria: line, ring, star, grid, tree, random.
func diffTopologies() []*graph.Graph {
	return []*graph.Graph{
		graph.NewLine(13),
		graph.NewRing(11),
		graph.NewStar(9),
		graph.NewGrid(4, 5),
		graph.NewBalancedTree(15, 2),
		graph.NewRandomConnected(24, 0.12, 7),
	}
}

// runEngines executes the same program on both engines (fresh node
// instances each, same seed) and returns their stats, traces and errors.
func runEngines(g *graph.Graph, mk func() Node, cfg Config) (flat, legacy Stats, flatTr, legacyTr *recordingTracer, flatErr, legacyErr error) {
	build := func() []Node {
		nodes := make([]Node, g.N())
		for i := range nodes {
			nodes[i] = mk()
		}
		return nodes
	}
	flatTr, legacyTr = &recordingTracer{}, &recordingTracer{}
	fcfg, lcfg := cfg, cfg
	fcfg.Tracer, lcfg.Tracer = flatTr, legacyTr
	flat, flatErr = Run(g, build(), fcfg)
	legacy, legacyErr = RunChannel(g, build(), lcfg)
	return
}

func compareRuns(t *testing.T, label string, flat, legacy Stats, flatTr, legacyTr *recordingTracer, flatErr, legacyErr error) {
	t.Helper()
	if (flatErr == nil) != (legacyErr == nil) ||
		(flatErr != nil && flatErr.Error() != legacyErr.Error()) {
		t.Fatalf("%s: errors differ: flat=%v legacy=%v", label, flatErr, legacyErr)
	}
	if flat != legacy {
		t.Errorf("%s: stats differ: flat=%+v legacy=%+v", label, flat, legacy)
	}
	if len(flatTr.events) != len(legacyTr.events) {
		t.Fatalf("%s: trace lengths differ: flat=%d legacy=%d", label, len(flatTr.events), len(legacyTr.events))
	}
	for i := range flatTr.events {
		if flatTr.events[i] != legacyTr.events[i] {
			t.Fatalf("%s: trace diverges at event %d: flat=%q legacy=%q",
				label, i, flatTr.events[i], legacyTr.events[i])
		}
	}
}

// TestEngineMatchesChannelRef is the differential pin: on every topology in
// the matrix, with both a deterministic flood and the randomized chatter
// program, the flat engine must reproduce the legacy channel engine's
// Stats and complete tracer event sequence.
func TestEngineMatchesChannelRef(t *testing.T) {
	for _, g := range diffTopologies() {
		d := 1
		if g.IsConnected() {
			d = g.Diameter()
		}
		programs := []struct {
			name string
			mk   func() Node
		}{
			{"flood", func() Node { return &floodMax{limit: d + 1} }},
			{"chatter", func() Node { return &chatter{} }},
		}
		for _, prog := range programs {
			t.Run(g.Name()+"/"+prog.name, func(t *testing.T) {
				for _, seed := range []uint64{1, 2, 42} {
					cfg := Config{MaxBytesPerMessage: 16, Seed: seed}
					flat, legacy, ftr, ltr, ferr, lerr := runEngines(g, prog.mk, cfg)
					compareRuns(t, fmt.Sprintf("seed=%d", seed), flat, legacy, ftr, ltr, ferr, lerr)
				}
			})
		}
	}
}

// TestEngineMatchesChannelRefOnErrors pins the error paths: invalid port,
// duplicate port, bandwidth violation and the round limit must surface the
// same error text and the same partially accumulated stats on both engines.
func TestEngineMatchesChannelRefOnErrors(t *testing.T) {
	cases := []struct {
		name string
		mk   func() Node
		cfg  Config
	}{
		{"invalid-port", func() Node { return badPort{} }, Config{Seed: 1}},
		{"duplicate-port", func() Node { return doubleSend{} }, Config{Seed: 1}},
		{"bandwidth", func() Node { return &oversized{} }, Config{MaxBytesPerMessage: 16, Seed: 1}},
		{"max-rounds", func() Node { return forever{} }, Config{MaxRounds: 7, Seed: 1}},
	}
	g := graph.NewRing(6)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			flat, legacy, ftr, ltr, ferr, lerr := runEngines(g, tc.mk, tc.cfg)
			if ferr == nil {
				t.Fatalf("expected an error from %s", tc.name)
			}
			compareRuns(t, tc.name, flat, legacy, ftr, ltr, ferr, lerr)
		})
	}
}

// TestEngineWorkerCountInvariant pins the tentpole guarantee directly: the
// flat engine's trace and stats are byte-identical at Workers ∈ {1, 2, 8}.
func TestEngineWorkerCountInvariant(t *testing.T) {
	for _, g := range diffTopologies() {
		t.Run(g.Name(), func(t *testing.T) {
			var want *recordingTracer
			var wantStats Stats
			for _, workers := range []int{1, 2, 8} {
				tr := &recordingTracer{}
				nodes := make([]Node, g.N())
				for i := range nodes {
					nodes[i] = &chatter{}
				}
				stats, err := Run(g, nodes, Config{MaxBytesPerMessage: 16, Seed: 9, Tracer: tr, Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				if want == nil {
					want, wantStats = tr, stats
					continue
				}
				if stats != wantStats {
					t.Errorf("workers=%d stats differ: %+v vs %+v", workers, stats, wantStats)
				}
				if len(tr.events) != len(want.events) {
					t.Fatalf("workers=%d trace length %d, want %d", workers, len(tr.events), len(want.events))
				}
				for i := range tr.events {
					if tr.events[i] != want.events[i] {
						t.Fatalf("workers=%d trace diverges at %d: %q vs %q", workers, i, tr.events[i], want.events[i])
					}
				}
			}
		})
	}
}

// mutator sends a payload, then mutates its own buffer after the round —
// the aliasing hazard the copy-on-deliver contract closes.
type mutator struct {
	ctx    *Context
	buf    []byte
	rounds int
}

func (m *mutator) Init(ctx *Context) { m.ctx = ctx; m.buf = []byte{0xAA, 0xBB} }
func (m *mutator) Round(in []PortMessage) ([]PortMessage, bool) {
	m.rounds++
	switch m.rounds {
	case 1:
		return []PortMessage{{Port: 0, Payload: m.buf}}, false
	case 2:
		// The message is in flight/delivered; scribble over the buffer.
		m.buf[0], m.buf[1] = 0xDE, 0xAD
		return nil, false
	}
	return nil, true
}

// receiver records the payload bytes it observes, and scribbles on them
// afterwards to prove receiver-side mutation cannot leak anywhere either.
type receiver struct {
	got []byte
}

func (r *receiver) Init(*Context) {}
func (r *receiver) Round(in []PortMessage) ([]PortMessage, bool) {
	for _, m := range in {
		r.got = append(r.got, m.Payload...)
		for i := range m.Payload {
			m.Payload[i] = 0xFF
		}
	}
	return nil, len(r.got) > 0
}

// TestPayloadCopiedOnDeliver pins the copy-on-deliver contract: the
// receiver must observe the bytes as sent even though the sender mutates
// its buffer after Round returns.
func TestPayloadCopiedOnDeliver(t *testing.T) {
	g := graph.NewLine(2)
	rcv := &receiver{}
	if _, err := Run(g, []Node{&mutator{}, rcv}, Config{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rcv.got, []byte{0xAA, 0xBB}) {
		t.Fatalf("receiver saw %x, want aabb: sender mutation leaked into the inbox", rcv.got)
	}
}

// TestTopologyCacheReusedAndValidated checks that repeated runs on one
// graph reuse the compiled CSR tables, and that mutating the graph between
// runs triggers recompilation instead of a stale simulation.
func TestTopologyCacheReusedAndValidated(t *testing.T) {
	g := graph.NewLine(4)
	t1 := topologyFor(g)
	if t2 := topologyFor(g); t2 != t1 {
		t.Fatal("topology recompiled for an unchanged graph")
	}
	if err := g.AddEdge(0, 3); err != nil {
		t.Fatal(err)
	}
	t3 := topologyFor(g)
	if t3 == t1 {
		t.Fatal("stale topology served after the graph gained an edge")
	}
	if t3.degree(0) != 2 || t3.degree(3) != 2 {
		t.Fatalf("recompiled topology wrong: deg(0)=%d deg(3)=%d", t3.degree(0), t3.degree(3))
	}
}

// TestCompileTopologyRoundTrip checks the CSR tables against the graph's
// own adjacency: dst matches the neighbor lists and revPort inverts them.
func TestCompileTopologyRoundTrip(t *testing.T) {
	for _, g := range diffTopologies() {
		tp := compileTopology(g)
		if tp.edges() != 2*g.NumEdges() {
			t.Fatalf("%s: %d directed edges, want %d", g.Name(), tp.edges(), 2*g.NumEdges())
		}
		for v := 0; v < g.N(); v++ {
			nb := g.Neighbors(v)
			if tp.degree(v) != len(nb) {
				t.Fatalf("%s: degree(%d) = %d, want %d", g.Name(), v, tp.degree(v), len(nb))
			}
			for p, u := range nb {
				ei := tp.start[v] + int32(p)
				if int(tp.dst[ei]) != u {
					t.Fatalf("%s: dst(%d,%d) = %d, want %d", g.Name(), v, p, tp.dst[ei], u)
				}
				back := g.Neighbors(u)[tp.revPort[ei]]
				if back != v {
					t.Fatalf("%s: revPort(%d,%d) routes to %d, want %d", g.Name(), v, p, back, v)
				}
			}
		}
	}
}

func benchFlood(b *testing.B, run func(*graph.Graph, []Node, Config) (Stats, error)) {
	g := graph.NewRing(100)
	d := g.Diameter()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nodes := make([]Node, g.N())
		for j := range nodes {
			nodes[j] = &floodMax{limit: d + 1}
		}
		if _, err := run(g, nodes, Config{MaxBytesPerMessage: 16, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunFlat measures the flat engine on the flood ring.
func BenchmarkRunFlat(b *testing.B) { benchFlood(b, Run) }

// BenchmarkRunChannelRef is the retained legacy engine on the same
// workload — the before/after anchor for the flat-engine rewrite.
func BenchmarkRunChannelRef(b *testing.B) { benchFlood(b, RunChannel) }
