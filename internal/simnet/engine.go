package simnet

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/unifdist/unifdist/internal/graph"
	"github.com/unifdist/unifdist/internal/rng"
)

// This file is the flat round engine behind Run: a single coordinator
// drives lock-step rounds over CSR-flattened topology tables, a bounded
// worker pool executes node programs in chunks, and all routing, validation
// and tracing happen serially in node-index order so the observable
// behaviour — Stats, tracer event sequence, error, and every node's final
// state — is byte-identical to the legacy goroutine-per-node engine
// (RunChannel) at any worker count.
//
// Determinism argument. Three things could make a parallel round engine
// schedule-dependent, and each is pinned:
//
//   - randomness: node v's private generator is the v-th Split of the root
//     generator, assigned during Init before any worker starts, exactly as
//     the legacy engine does; workers never draw from a shared stream;
//   - tracer/stats order: workers only write node v's (out, done) into the
//     indexed slot results[v]; the coordinator then walks the active set in
//     ascending node order to validate, route, trace and account, so the
//     event sequence is a pure function of the round's results;
//   - memory: each delivered payload is copied into the round's arena
//     (copy-on-deliver), so a sender reusing or mutating its outbox buffer
//     after Round returns cannot corrupt a neighbor's inbox.
//
// Steady-state allocation. The per-topology CSR tables (adjacency, reverse
// ports) are compiled once and cached across runs; inboxes are
// double-buffered arenas sized by total degree, so routing appends never
// allocate once the payload arenas have grown to the peak round volume; the
// duplicate-port check is a degree-bounded bitset cleared by re-walking the
// node's outbox; and the active set is compacted in place so late rounds
// only touch live nodes.

// topology is the CSR-flattened form of a graph: node v's ports are the
// slots start[v] … start[v+1]−1 of the flat edge arrays.
type topology struct {
	n     int
	start []int32 // len n+1: port-slot offsets
	dst   []int32 // per directed edge: the neighbor vertex
	// revPort is, per directed edge (v, port)→u, the port index of v in
	// u's neighbor list — where a message sent by v on that port lands.
	revPort []int32
	maxDeg  int
}

// edges returns the directed edge count (Σ degrees).
func (t *topology) edges() int { return int(t.start[t.n]) }

// degree returns node v's degree.
func (t *topology) degree(v int) int { return int(t.start[v+1] - t.start[v]) }

// compileTopology builds the CSR tables for g.
func compileTopology(g *graph.Graph) *topology {
	n := g.N()
	t := &topology{n: n, start: make([]int32, n+1)}
	total := 0
	for v := 0; v < n; v++ {
		t.start[v] = int32(total)
		d := g.Degree(v)
		total += d
		if d > t.maxDeg {
			t.maxDeg = d
		}
	}
	t.start[n] = int32(total)
	t.dst = make([]int32, total)
	t.revPort = make([]int32, total)
	// portAt[u<<32|w] is w's port index in u's neighbor list.
	portAt := make(map[uint64]int32, total)
	for u := 0; u < n; u++ {
		for i, w := range g.Neighbors(u) {
			portAt[uint64(u)<<32|uint64(uint32(w))] = int32(i)
		}
	}
	for v := 0; v < n; v++ {
		base := t.start[v]
		for i, u := range g.Neighbors(v) {
			t.dst[base+int32(i)] = int32(u)
			t.revPort[base+int32(i)] = portAt[uint64(u)<<32|uint64(uint32(v))]
		}
	}
	return t
}

// topoCache memoizes compiled topologies per *graph.Graph so trial loops
// (thousands of Runs on one graph) compile the CSR tables once. Entries are
// validated against the graph's current shape, so a graph mutated after
// caching is recompiled rather than simulated stale. The cache is bounded:
// when it exceeds topoCacheLimit distinct graphs it is reset wholesale,
// which keeps long fuzzing sessions from accumulating dead tables.
const topoCacheLimit = 64

var (
	topoMu    sync.RWMutex
	topoCache = map[*graph.Graph]*topology{}
)

func topologyFor(g *graph.Graph) *topology {
	topoMu.RLock()
	t, ok := topoCache[g]
	topoMu.RUnlock()
	if ok && t.n == g.N() && t.edges() == 2*g.NumEdges() {
		return t
	}
	t = compileTopology(g)
	topoMu.Lock()
	if len(topoCache) >= topoCacheLimit {
		topoCache = map[*graph.Graph]*topology{}
	}
	topoCache[g] = t
	topoMu.Unlock()
	return t
}

// nodeResult is one node's round output, written into an indexed slot by
// whichever worker executed the node.
type nodeResult struct {
	out  []PortMessage
	done bool
}

// engine is the per-Run state of the flat round engine.
type engine struct {
	tp    *topology
	nodes []Node
	cfg   Config

	// Double-buffered inbox arenas: cur is consumed this round, next is
	// filled by routing. Slot start[v]+i holds v's i-th delivered message.
	cur, next       []PortMessage
	curCnt, nextCnt []int32
	// payNext is the copy-on-deliver payload arena for the round being
	// routed; payCur backs the inboxes currently being consumed.
	payCur, payNext []byte

	results    []nodeResult
	active     []bool
	activeList []int32
	dupBits    []uint64 // degree-bounded duplicate-port bitset

	workers int
}

// run executes the simulation; see Run for the contract.
func (e *engine) run() (Stats, error) {
	tp, cfg := e.tp, e.cfg
	k := tp.n
	maxRounds := cfg.MaxRounds
	if maxRounds == 0 {
		maxRounds = 10*k + 1000
	}

	var stats Stats
	for stats.Rounds < maxRounds && len(e.activeList) > 0 {
		stats.Rounds++
		if cfg.Tracer != nil {
			cfg.Tracer.OnRoundStart(stats.Rounds, len(e.activeList))
		}
		e.execRound()
		// Reset the next-round buffers, then route serially in node order.
		for i := range e.nextCnt {
			e.nextCnt[i] = 0
		}
		e.payNext = e.payNext[:0]
		newActive := e.activeList[:0]
		for _, v32 := range e.activeList {
			v := int(v32)
			res := &e.results[v]
			if res.done {
				e.active[v] = false
				if cfg.Tracer != nil {
					cfg.Tracer.OnHalt(stats.Rounds, v)
				}
			} else {
				newActive = append(newActive, v32)
			}
			if err := e.route(v, res.out, &stats); err != nil {
				return stats, err
			}
			res.out = nil
		}
		e.activeList = newActive
		e.cur, e.next = e.next, e.cur
		e.curCnt, e.nextCnt = e.nextCnt, e.curCnt
		e.payCur, e.payNext = e.payNext, e.payCur
	}
	if remaining := len(e.activeList); remaining > 0 {
		return stats, fmt.Errorf("%w: %d nodes still active after %d rounds", ErrMaxRounds, remaining, stats.Rounds)
	}
	if o, ok := cfg.Tracer.(RunEndObserver); ok {
		o.OnRunEnd(stats)
	}
	return stats, nil
}

// execRound runs Round on every active node, in parallel chunks when the
// pool has more than one worker, writing into the indexed result slots.
func (e *engine) execRound() {
	n := len(e.activeList)
	workers := e.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for _, v := range e.activeList {
			e.runNode(int(v))
		}
		return
	}
	chunk := engineChunk(n, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				lo := int(next.Add(int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				for _, v := range e.activeList[lo:hi] {
					e.runNode(int(v))
				}
			}
		}()
	}
	wg.Wait()
}

// engineChunk picks the work-stealing grain: enough chunks per worker that
// an expensive node cannot strand the pool, large enough to amortize the
// atomic claim.
func engineChunk(n, workers int) int {
	chunk := n / (workers * 8)
	if chunk < 1 {
		chunk = 1
	}
	if chunk > 256 {
		chunk = 256
	}
	return chunk
}

// runNode executes node v's round on its current inbox slice.
func (e *engine) runNode(v int) {
	base := e.tp.start[v]
	in := e.cur[base : base+int32(e.curCnt[v])]
	out, done := e.nodes[v].Round(in)
	e.results[v] = nodeResult{out: out, done: done}
}

// route validates node v's outbox and delivers it into the next-round
// arenas, updating stats and firing the tracer. Validation order (invalid
// port, duplicate port, bandwidth) and partial accounting on error match
// the legacy engine exactly.
func (e *engine) route(v int, out []PortMessage, stats *Stats) error {
	tp, cfg := e.tp, e.cfg
	deg := tp.degree(v)
	routed := 0
	var err error
	for _, m := range out {
		if m.Port < 0 || m.Port >= deg {
			err = fmt.Errorf("simnet: node %d sent on invalid port %d", v, m.Port)
			break
		}
		if e.dupBits[m.Port>>6]&(1<<(uint(m.Port)&63)) != 0 {
			err = fmt.Errorf("simnet: node %d sent twice on port %d in one round", v, m.Port)
			break
		}
		e.dupBits[m.Port>>6] |= 1 << (uint(m.Port) & 63)
		routed++
		if cfg.MaxBytesPerMessage > 0 && len(m.Payload) > cfg.MaxBytesPerMessage {
			err = fmt.Errorf("%w: node %d sent %d bytes (limit %d)",
				ErrBandwidthExceeded, v, len(m.Payload), cfg.MaxBytesPerMessage)
			break
		}
		ei := tp.start[v] + int32(m.Port)
		d := tp.dst[ei]
		if !e.active[d] {
			continue // delivered into the void: dst already halted
		}
		// Copy-on-deliver: the receiver gets its own bytes, so the sender
		// may reuse its payload buffer the moment Round returns.
		off := len(e.payNext)
		e.payNext = append(e.payNext, m.Payload...)
		payload := e.payNext[off : off+len(m.Payload) : off+len(m.Payload)]
		slot := tp.start[d] + e.nextCnt[d]
		e.next[slot] = PortMessage{Port: int(tp.revPort[ei]), Payload: payload}
		e.nextCnt[d]++
		if cfg.Tracer != nil {
			cfg.Tracer.OnMessage(stats.Rounds, v, int(d), payload)
		}
		stats.Messages++
		stats.Bytes += int64(len(m.Payload))
		if len(m.Payload) > stats.MaxMessageBytes {
			stats.MaxMessageBytes = len(m.Payload)
		}
	}
	// Clear the duplicate bitset by re-walking the ports that set it.
	for _, m := range out[:routed] {
		e.dupBits[m.Port>>6] &^= 1 << (uint(m.Port) & 63)
	}
	return err
}

// runFlat is the Run implementation on the flat engine.
func runFlat(g *graph.Graph, nodes []Node, cfg Config) (Stats, error) {
	k := g.N()
	if len(nodes) != k {
		return Stats{}, fmt.Errorf("simnet: %d nodes for %d vertices", len(nodes), k)
	}
	tp := topologyFor(g)
	root := rng.New(cfg.Seed)
	for v := 0; v < k; v++ {
		nodes[v].Init(&Context{
			ID:       v,
			Degree:   tp.degree(v),
			NumNodes: k,
			RNG:      root.Split(),
		})
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &engine{
		tp:         tp,
		nodes:      nodes,
		cfg:        cfg,
		cur:        make([]PortMessage, tp.edges()),
		next:       make([]PortMessage, tp.edges()),
		curCnt:     make([]int32, k),
		nextCnt:    make([]int32, k),
		results:    make([]nodeResult, k),
		active:     make([]bool, k),
		activeList: make([]int32, k),
		dupBits:    make([]uint64, (tp.maxDeg+64)/64+1),
		workers:    workers,
	}
	for v := 0; v < k; v++ {
		e.active[v] = true
		e.activeList[v] = int32(v)
	}
	return e.run()
}
