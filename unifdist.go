package unifdist

import (
	"github.com/unifdist/unifdist/internal/congest"
	"github.com/unifdist/unifdist/internal/dist"
	"github.com/unifdist/unifdist/internal/graph"
	"github.com/unifdist/unifdist/internal/local"
	"github.com/unifdist/unifdist/internal/reduction"
	"github.com/unifdist/unifdist/internal/rng"
	"github.com/unifdist/unifdist/internal/smp"
	"github.com/unifdist/unifdist/internal/tester"
	"github.com/unifdist/unifdist/internal/zeroround"
)

// Randomness.
type (
	// RNG is the library's deterministic splittable random generator.
	RNG = rng.RNG
)

// NewRNG returns a deterministic generator seeded with seed.
func NewRNG(seed uint64) *RNG { return rng.New(seed) }

// Distributions.
type (
	// Distribution is a discrete distribution on {0, …, N()−1}.
	Distribution = dist.Distribution
	// Uniform is the uniform distribution U(n).
	Uniform = dist.Uniform
	// TwoBump is the canonical ε-far paired-perturbation instance.
	TwoBump = dist.TwoBump
	// Histogram is an explicit probability vector with O(1) sampling.
	Histogram = dist.Histogram
)

// Sampling and collision kernels.
type (
	// BatchSampler is the optional batch-sampling refinement of Distribution.
	BatchSampler = dist.BatchSampler
	// CollisionScratch holds reusable state for allocation-free collision
	// statistics across many sample blocks.
	CollisionScratch = dist.CollisionScratch
)

// Distribution constructors and measures, re-exported from internal/dist.
var (
	NewUniform           = dist.NewUniform
	NewTwoBump           = dist.NewTwoBump
	NewHistogram         = dist.NewHistogram
	NewZipf              = dist.NewZipf
	NewPointMassMixture  = dist.NewPointMassMixture
	NewHalfSupport       = dist.NewHalfSupport
	L1FromUniform        = dist.L1FromUniform
	L1                   = dist.L1
	TV                   = dist.TV
	CollisionProbability = dist.CollisionProbability
	SampleN              = dist.SampleN
	SampleInto           = dist.SampleInto
	NewCollisionScratch  = dist.NewCollisionScratch
	HasCollision         = dist.HasCollision
	CountCollisions      = dist.CountCollisions
)

// Centralized testers (Section 3).
type (
	// Tester is a centralized accept/reject uniformity tester.
	Tester = tester.Tester
	// GapParams are the resolved single-collision tester parameters.
	GapParams = tester.GapParams
	// SingleCollision is the (δ, 1+γε²)-gap tester A_δ.
	SingleCollision = tester.SingleCollision
	// Amplified is the m-repetition gap amplification of A_δ.
	Amplified = tester.Amplified
	// CollisionCounting is the classical Θ(√n/ε²) baseline.
	CollisionCounting = tester.CollisionCounting
)

// Centralized constructors and solvers, re-exported from internal/tester.
var (
	SolveGap               = tester.SolveGap
	NewSingleCollision     = tester.NewSingleCollision
	NewAmplified           = tester.NewAmplified
	NewCollisionCounting   = tester.NewCollisionCounting
	BaselineSampleSize     = tester.BaselineSampleSize
	EstimateRejectProb     = tester.EstimateRejectProb
	RunTester              = tester.Run
	FarRejectLowerBound    = tester.FarRejectLowerBound
	UniformNoCollisionProb = tester.UniformNoCollisionProb
)

// 0-round distributed testers (Sections 3.2 and 4).
type (
	// Network is a 0-round distributed tester.
	Network = zeroround.Network
	// Rule is a network decision rule.
	Rule = zeroround.Rule
	// ANDRule accepts iff every node accepts.
	ANDRule = zeroround.ANDRule
	// ThresholdRule rejects iff at least T nodes reject.
	ThresholdRule = zeroround.ThresholdRule
	// ANDConfig is Theorem 1.1's resolved configuration.
	ANDConfig = zeroround.ANDConfig
	// ThresholdConfig is Theorem 1.2's resolved configuration.
	ThresholdConfig = zeroround.ThresholdConfig
	// AsymmetricConfig is Section 4's per-node cost configuration.
	AsymmetricConfig = zeroround.AsymmetricConfig
)

// 0-round solvers and builders, re-exported from internal/zeroround.
var (
	SolveAND                 = zeroround.SolveAND
	BuildAND                 = zeroround.BuildAND
	SolveThreshold           = zeroround.SolveThreshold
	BuildThreshold           = zeroround.BuildThreshold
	SolveAsymmetricAND       = zeroround.SolveAsymmetricAND
	SolveAsymmetricThreshold = zeroround.SolveAsymmetricThreshold
	BuildAsymmetric          = zeroround.BuildAsymmetric
	NewNetwork               = zeroround.NewNetwork
	GapConstant              = zeroround.CP
)

// Network topologies.
type (
	// Graph is a simple undirected network topology.
	Graph = graph.Graph
)

// Topology constructors, re-exported from internal/graph.
var (
	NewGraph           = graph.New
	NewLine            = graph.NewLine
	NewRing            = graph.NewRing
	NewStar            = graph.NewStar
	NewComplete        = graph.NewComplete
	NewGrid            = graph.NewGrid
	NewBalancedTree    = graph.NewBalancedTree
	NewRandomConnected = graph.NewRandomConnected
)

// CONGEST protocols (Theorems 1.4 and 5.1).
type (
	// CongestParams is the CONGEST protocol configuration.
	CongestParams = congest.Params
	// PackagingResult reports a τ-token-packaging run.
	PackagingResult = congest.PackagingResult
	// CongestResult reports a full CONGEST uniformity run.
	CongestResult = congest.UniformityResult
	// AggregateOp selects a distributed reduction (sum/min/max).
	AggregateOp = congest.AggregateOp
	// AggregateResult reports a distributed reduction.
	AggregateResult = congest.AggregateResult
)

// Distributed reduction operators.
const (
	AggSum = congest.AggSum
	AggMin = congest.AggMin
	AggMax = congest.AggMax
)

// CONGEST solvers and drivers, re-exported from internal/congest.
var (
	SolveCongest             = congest.SolveParams
	SolveCongestCalibrated   = congest.SolveParamsCalibrated
	RunTokenPackaging        = congest.RunTokenPackaging
	RunCongestUniformity     = congest.RunUniformity
	RunCongestOnDistribution = congest.RunUniformityOnDistribution
	RunCongestMulti          = congest.RunUniformityMulti
	Aggregate                = congest.Aggregate
	RunCongestUnknownK       = congest.RunUniformityUnknownK
	EstimateCongestError     = congest.EstimateError
	PredictedTau             = congest.PredictedTau
)

// LOCAL protocols (Section 6).
type (
	// LocalParams is the LOCAL protocol configuration.
	LocalParams = local.Params
	// LocalResult reports a LOCAL uniformity run.
	LocalResult = local.Result
	// MISResult reports a Luby MIS execution.
	MISResult = local.MISResult
)

// LOCAL solvers and drivers, re-exported from internal/local.
var (
	SolveLocal             = local.SolveLocal
	RunLocalUniformity     = local.RunUniformity
	RunLocalMulti          = local.RunUniformityMulti
	RunLocalOnDistribution = local.RunUniformityOnDistribution
	LubyMIS                = local.LubyMIS
	VerifyMIS              = local.VerifyMIS
)

// SMP Equality (Lemma 7.3).
type (
	// Equality is the simultaneous Equality protocol with asymmetric error.
	Equality = smp.Equality
	// SMPMessage is one player's message to the referee.
	SMPMessage = smp.Message
)

// NewEquality builds the Lemma 7.3 protocol, re-exported from internal/smp.
var NewEquality = smp.NewEquality

// Identity→uniformity reduction.
type (
	// Filter maps samples so a fixed target distribution becomes uniform.
	Filter = reduction.Filter
	// Filtered is a source distribution pushed through a Filter.
	Filtered = reduction.Filtered
)

// Reduction constructors, re-exported from internal/reduction.
var (
	NewFilter       = reduction.NewFilter
	NewFiltered     = reduction.NewFiltered
	GrainForEpsilon = reduction.GrainForEpsilon
)
