module github.com/unifdist/unifdist

go 1.22
