package unifdist_test

import (
	"fmt"

	unifdist "github.com/unifdist/unifdist"
)

// ExampleSolveAND resolves Theorem 1.1's AND-rule parameters: each node
// runs m repetitions of the collision tester, and the network rejects iff
// any node rejects.
func ExampleSolveAND() {
	cfg, err := unifdist.SolveAND(1<<20, 10000, 1.0, 1.0/3)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("m=%d repetitions, feasible=%v\n", cfg.M, cfg.Feasible)
	fmt.Printf("node gap %.2f vs required C_p %.2f\n", cfg.NodeGap, cfg.RequiredGap)
	// Output:
	// m=2 repetitions, feasible=true
	// node gap 2.77 vs required C_p 2.71
}

// ExampleLubyMIS computes a maximal independent set distributively and
// verifies it.
func ExampleLubyMIS() {
	g := unifdist.NewRing(9)
	res, err := unifdist.LubyMIS(g, 7)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("valid MIS:", unifdist.VerifyMIS(g, res.InMIS) == nil)
	// Output:
	// valid MIS: true
}

// ExampleRunTokenPackaging packages one token per node into groups of τ
// (Theorem 5.1): every group has exactly τ tokens and at most τ−1 tokens
// are discarded at the root.
func ExampleRunTokenPackaging() {
	g := unifdist.NewGrid(4, 5) // 20 nodes
	tokens := make([]uint64, g.N())
	for i := range tokens {
		tokens[i] = uint64(i)
	}
	res, err := unifdist.RunTokenPackaging(g, tokens, 6, 1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("packages: %d, leftover: %d\n", len(res.Packages), res.Discarded)
	// Output:
	// packages: 3, leftover: 2
}

// ExampleAggregate computes a global sum in O(D) CONGEST rounds.
func ExampleAggregate() {
	g := unifdist.NewLine(10)
	values := make([]uint64, 10)
	for i := range values {
		values[i] = uint64(i + 1) // 1..10
	}
	res, err := unifdist.Aggregate(g, values, unifdist.AggSum, 1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("sum:", res.Value)
	// Output:
	// sum: 55
}

// ExampleNewFilter reduces identity testing to uniformity testing: the
// grained target maps exactly to the uniform distribution on M buckets.
func ExampleNewFilter() {
	eta := []float64{0.5, 0.25, 0.25}
	filter, err := unifdist.NewFilter(eta, 8)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("buckets: %d, rounding error: %.2f\n",
		filter.OutputDomain(), filter.RoundingError())
	// Output:
	// buckets: 8, rounding error: 0.00
}

// ExampleNewEquality runs Lemma 7.3's simultaneous Equality protocol:
// equal inputs are always accepted at a cost of O(√(τδn)) bits.
func ExampleNewEquality() {
	e, err := unifdist.NewEquality(1024, 0.01, 2)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	r := unifdist.NewRNG(3)
	x := make([]byte, 128)
	accept, err := e.Run(x, x, r)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("equal inputs accepted: %v (message: %d of %d bits)\n",
		accept, e.MessageBits(), 1024)
	// Output:
	// equal inputs accepted: true (message: 37 of 1024 bits)
}
