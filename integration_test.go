package unifdist_test

import (
	"testing"

	unifdist "github.com/unifdist/unifdist"
)

// The integration tests exercise cross-module scenarios through the public
// API only — the combinations a downstream user would actually build.

// TestIntegrationIdentityTestingOverCongest combines the paper's two big
// ideas: each node applies the identity→uniformity filter locally with
// private randomness (§1), and the network then runs the full CONGEST
// uniformity protocol (Theorem 1.4) on the filtered samples.
func TestIntegrationIdentityTestingOverCongest(t *testing.T) {
	const (
		nBins = 64
		eps   = 0.8
		k     = 6000
	)
	// Known target: a discretized bell curve.
	eta := make([]float64, nBins)
	target := unifdist.NewZipf(nBins, 0.7)
	for i := range eta {
		eta[i] = target.Prob(i)
	}
	m := 8 * unifdist.GrainForEpsilon(nBins, eps)
	filter, err := unifdist.NewFilter(eta, m)
	if err != nil {
		t.Fatal(err)
	}
	// The far instances below are ≥1-far after filtering (the filter
	// preserves distances), so the network can be solved at ε=1 where the
	// calibrated regime is feasible at this k.
	params, err := unifdist.SolveCongestCalibrated(m, k, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if !params.Feasible {
		t.Skipf("calibrated regime infeasible: %+v", params)
	}
	g := unifdist.NewRandomConnected(k, 0.0012, 3)
	r := unifdist.NewRNG(17)

	run := func(mu unifdist.Distribution) bool {
		filtered, err := unifdist.NewFiltered(mu, filter)
		if err != nil {
			t.Fatal(err)
		}
		res, err := unifdist.RunCongestOnDistribution(g, filtered, params, r)
		if err != nil {
			t.Fatal(err)
		}
		return res.Accept
	}

	// µ = η must be accepted in a clear majority of runs; a far µ rejected.
	acceptEta, rejectFar := 0, 0
	const reps = 5
	for i := 0; i < reps; i++ {
		if run(target) {
			acceptEta++
		}
		// Far instance: half the mass on one bin — far from the Zipf
		// target and collision-heavy after filtering.
		if !run(unifdist.NewPointMassMixture(nBins, 0, 0.5)) {
			rejectFar++
		}
	}
	if acceptEta < reps-1 {
		t.Errorf("µ=η accepted only %d/%d times", acceptEta, reps)
	}
	if rejectFar < reps-1 {
		t.Errorf("far µ rejected only %d/%d times", rejectFar, reps)
	}
}

// TestIntegrationUnknownKPipeline drives the unknown-k CONGEST extension
// through the facade.
func TestIntegrationUnknownKPipeline(t *testing.T) {
	const n = 1 << 12
	g := unifdist.NewGrid(25, 20)
	r := unifdist.NewRNG(5)
	tokens := make([]uint64, g.N())
	d := unifdist.NewUniform(n)
	for i := range tokens {
		tokens[i] = uint64(d.Sample(r))
	}
	res, err := unifdist.RunCongestUnknownK(g, tokens, n, 1.0, 9)
	if err != nil {
		t.Fatal(err)
	}
	if res.DiscoveredK != g.N() {
		t.Errorf("discovered k=%d, want %d", res.DiscoveredK, g.N())
	}
}

// TestIntegrationLocalVsCongestAgreeOnExtremes runs both multi-round
// models on the same extreme inputs; they must agree.
func TestIntegrationLocalVsCongestAgreeOnExtremes(t *testing.T) {
	const k = 600
	g := unifdist.NewRandomConnected(k, 0.01, 11)
	r := unifdist.NewRNG(23)

	// Near-point-mass on a small domain: both must reject.
	small := 1 << 10
	point := unifdist.NewPointMassMixture(small, 0, 0.99)
	congestParams, err := unifdist.SolveCongestCalibrated(small, k, 1)
	if err != nil {
		t.Fatal(err)
	}
	cres, err := unifdist.RunCongestOnDistribution(g, point, congestParams, r)
	if err != nil {
		t.Fatal(err)
	}
	localParams := unifdist.LocalParams{N: small, K: k, Eps: 1, P: 1.0 / 3, R: 4}
	localParams.AND.M = 1
	lres, err := unifdist.RunLocalOnDistribution(g, point, localParams, r)
	if err != nil {
		t.Fatal(err)
	}
	if cres.Accept || lres.Accept {
		t.Errorf("near point mass: congest accept=%v local accept=%v, want both reject", cres.Accept, lres.Accept)
	}

	// Uniform over a huge domain: both must accept.
	big := 1 << 30
	u := unifdist.NewUniform(big)
	congestParams.N = big // collision probability ~0 regardless of τ/T
	cres, err = unifdist.RunCongestOnDistribution(g, u, congestParams, r)
	if err != nil {
		t.Fatal(err)
	}
	localParams.N = big
	lres, err = unifdist.RunLocalOnDistribution(g, u, localParams, r)
	if err != nil {
		t.Fatal(err)
	}
	if !cres.Accept || !lres.Accept {
		t.Errorf("huge uniform: congest accept=%v local accept=%v, want both accept", cres.Accept, lres.Accept)
	}
}

// TestIntegrationAsymmetricMatchesSymmetricUnitCosts checks Section 4's
// symmetric-recovery claim end to end through the facade.
func TestIntegrationAsymmetricMatchesSymmetricUnitCosts(t *testing.T) {
	const (
		n = 1 << 16
		k = 8000
	)
	costs := make([]float64, k)
	for i := range costs {
		costs[i] = 1
	}
	asym, err := unifdist.SolveAsymmetricThreshold(n, 1, costs)
	if err != nil {
		t.Fatal(err)
	}
	sym, err := unifdist.SolveThreshold(n, k, 1)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(asym.Samples[0]) / float64(sym.SamplesPerNode)
	if ratio < 0.75 || ratio > 1.35 {
		t.Errorf("unit-cost asymmetric %d samples vs symmetric %d", asym.Samples[0], sym.SamplesPerNode)
	}
}

// TestIntegrationEqualityChainsThroughTester verifies the Theorem 7.1
// bridge through the public API of the smp reduction (via internal
// helpers re-exported on the facade where applicable).
func TestIntegrationEqualityChainsThroughTester(t *testing.T) {
	e, err := unifdist.NewEquality(512, 0.01, 2)
	if err != nil {
		t.Fatal(err)
	}
	r := unifdist.NewRNG(2)
	x := make([]byte, 64)
	for i := range x {
		x[i] = byte(i * 7)
	}
	acc, err := e.Run(x, x, r)
	if err != nil {
		t.Fatal(err)
	}
	if !acc {
		t.Fatal("equal inputs rejected")
	}
	if e.MessageBits() >= 512 {
		t.Fatalf("message cost %d not sublinear", e.MessageBits())
	}
}
