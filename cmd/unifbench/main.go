// Command unifbench regenerates the experiment tables E1–E15 that
// reproduce every theorem of "Distributed Uniformity Testing" (PODC 2018).
// See DESIGN.md for the experiment index and EXPERIMENTS.md for recorded
// results.
//
// Usage:
//
//	unifbench [-mode quick|full] [-run E1,E3,...] [-csv|-markdown|-json]
//	          [-seed N] [-workers N] [-list] [-journal run.jsonl]
//	          [-obs-addr :9090] [-cpuprofile cpu.out] [-memprofile mem.out]
//
// -json emits one machine-readable run document (provenance, per-experiment
// tables with durations and metric deltas, and the full metrics snapshot)
// instead of rendered tables. -journal streams per-experiment and per-round
// simulation events as JSON Lines while the run progresses. The profiling
// flags wrap the whole run with runtime/pprof.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"github.com/unifdist/unifdist/internal/experiment"
	"github.com/unifdist/unifdist/internal/obs"
	"github.com/unifdist/unifdist/internal/obs/export"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "unifbench:", err)
		os.Exit(1)
	}
}

// obsReady is called with the bound obs-server address once it is
// listening; tests override it to discover a ":0" port.
var obsReady = func(string) {}

// experimentResult is one experiment's entry in the -json document.
type experimentResult struct {
	*experiment.Table
	DurationMS float64       `json:"duration_ms"`
	Metrics    *obs.Snapshot `json:"metrics,omitempty"`
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("unifbench", flag.ContinueOnError)
	var (
		modeFlag    = fs.String("mode", "quick", "experiment scale: quick or full")
		runFlag     = fs.String("run", "", "comma-separated experiment IDs (default: all)")
		csvFlag     = fs.Bool("csv", false, "emit CSV instead of aligned text")
		mdFlag      = fs.Bool("markdown", false, "emit markdown tables instead of aligned text")
		jsonFlag    = fs.Bool("json", false, "emit one machine-readable run document (tables + provenance + metrics)")
		seedFlag    = fs.Uint64("seed", 1, "root random seed")
		workersFlag = fs.Int("workers", 0, "worker goroutines for sweep rows and trial batches (0 = GOMAXPROCS; tables are identical at any value)")
		listFlag    = fs.Bool("list", false, "list experiments and exit")
		journalFlag = fs.String("journal", "", "write per-experiment and per-round events to this JSONL file")
		obsAddr     = fs.String("obs-addr", "", "serve live /metrics, /healthz, /runz and pprof on this address while the experiments run")
		cpuProfile  = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile  = fs.String("memprofile", "", "write a heap profile to this file at exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *listFlag {
		for _, e := range experiment.All() {
			fmt.Fprintf(stdout, "%-4s %s\n", e.ID, e.Description)
		}
		return nil
	}

	var mode experiment.Mode
	switch *modeFlag {
	case "quick":
		mode = experiment.Quick
	case "full":
		mode = experiment.Full
	default:
		return fmt.Errorf("unknown mode %q (want quick or full)", *modeFlag)
	}

	var selected []experiment.Experiment
	if *runFlag == "" {
		selected = experiment.All()
	} else {
		for _, id := range strings.Split(*runFlag, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiment.Lookup(id)
			if !ok {
				return fmt.Errorf("unknown experiment %q (use -list)", id)
			}
			selected = append(selected, e)
		}
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}

	// Telemetry is attached only when some sink will consume it; the
	// default table-rendering path stays zero-overhead.
	prov := obs.CollectProvenance("unifbench", mode.String(), *seedFlag, args)
	prov.Workers = *workersFlag
	rec := &obs.Recorder{}
	if *jsonFlag {
		rec.Registry = obs.NewRegistry()
	}
	if *journalFlag != "" {
		journal, err := obs.OpenJournal(*journalFlag)
		if err != nil {
			return err
		}
		defer journal.Close()
		rec.Journal = journal
		if rec.Reg() == nil {
			rec.Registry = obs.NewRegistry()
		}
		journal.Write(struct {
			Kind       string         `json:"kind"`
			Provenance obs.Provenance `json:"provenance"`
		}{Kind: "run_start", Provenance: prov})
	}
	if *obsAddr != "" {
		if rec.Reg() == nil {
			rec.Registry = obs.NewRegistry()
		}
		// Copy the provenance by value: the run loop fills in WallMS later
		// while /runz handlers may be reading.
		provCopy := prov
		obsReg := rec.Reg()
		srv := export.New(obsReg, export.WithRunz(func() any {
			return map[string]any{
				"provenance": provCopy,
				"metrics":    obsReg.Snapshot(),
			}
		}))
		bound, err := srv.Start(*obsAddr)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "unifbench: obs server listening on http://%s\n", bound)
		obsReady(bound)
	}
	if !rec.Enabled() {
		rec = nil
	}

	start := time.Now()
	var results []experimentResult
	for _, e := range selected {
		ctx := &experiment.RunContext{Mode: mode, Seed: *seedFlag, Workers: *workersFlag, Obs: rec}
		res, err := e.Execute(ctx)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if *jsonFlag {
			er := experimentResult{
				Table:      res.Table,
				DurationMS: float64(res.Duration.Microseconds()) / 1e3,
			}
			if !res.Metrics.Empty() {
				m := res.Metrics
				er.Metrics = &m
			}
			results = append(results, er)
			continue
		}
		if *csvFlag {
			if err := res.Table.RenderCSV(stdout); err != nil {
				return err
			}
			fmt.Fprintln(stdout)
			continue
		}
		if *mdFlag {
			if err := res.Table.RenderMarkdown(stdout); err != nil {
				return err
			}
			fmt.Fprintln(stdout)
			continue
		}
		if err := res.Table.Render(stdout); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "(%s completed in %v, mode=%s)\n\n", e.ID, res.Duration.Round(time.Millisecond), mode)
	}
	prov.WallMS = float64(time.Since(start).Microseconds()) / 1e3

	if j := rec.Jour(); j != nil {
		j.Write(struct {
			Kind   string  `json:"kind"`
			WallMS float64 `json:"wall_ms"`
		}{Kind: "run_end", WallMS: prov.WallMS})
		if err := j.Err(); err != nil {
			return err
		}
	}

	if *jsonFlag {
		doc := obs.Document{
			Provenance: prov,
			Results:    map[string]any{"experiments": results},
		}
		if rec != nil {
			snap := rec.Reg().Snapshot()
			doc.Metrics = &snap
		}
		if err := doc.WriteJSON(stdout); err != nil {
			return err
		}
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
	}
	return nil
}
