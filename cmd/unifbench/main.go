// Command unifbench regenerates the experiment tables E1–E11 that
// reproduce every theorem of "Distributed Uniformity Testing" (PODC 2018).
// See DESIGN.md for the experiment index and EXPERIMENTS.md for recorded
// results.
//
// Usage:
//
//	unifbench [-mode quick|full] [-run E1,E3,...] [-csv] [-seed N] [-list]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/unifdist/unifdist/internal/experiment"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "unifbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("unifbench", flag.ContinueOnError)
	var (
		modeFlag = fs.String("mode", "quick", "experiment scale: quick or full")
		runFlag  = fs.String("run", "", "comma-separated experiment IDs (default: all)")
		csvFlag  = fs.Bool("csv", false, "emit CSV instead of aligned text")
		mdFlag   = fs.Bool("markdown", false, "emit markdown tables instead of aligned text")
		seedFlag = fs.Uint64("seed", 1, "root random seed")
		listFlag = fs.Bool("list", false, "list experiments and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *listFlag {
		for _, e := range experiment.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Description)
		}
		return nil
	}

	var mode experiment.Mode
	switch *modeFlag {
	case "quick":
		mode = experiment.Quick
	case "full":
		mode = experiment.Full
	default:
		return fmt.Errorf("unknown mode %q (want quick or full)", *modeFlag)
	}

	var selected []experiment.Experiment
	if *runFlag == "" {
		selected = experiment.All()
	} else {
		for _, id := range strings.Split(*runFlag, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiment.Lookup(id)
			if !ok {
				return fmt.Errorf("unknown experiment %q (use -list)", id)
			}
			selected = append(selected, e)
		}
	}

	for _, e := range selected {
		start := time.Now()
		tbl, err := e.Run(mode, *seedFlag)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if *csvFlag {
			if err := tbl.RenderCSV(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
			continue
		}
		if *mdFlag {
			if err := tbl.RenderMarkdown(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
			continue
		}
		if err := tbl.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Printf("(%s completed in %v, mode=%s)\n\n", e.ID, time.Since(start).Round(time.Millisecond), mode)
	}
	return nil
}
