package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownMode(t *testing.T) {
	err := run([]string{"-mode", "bogus"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "unknown mode") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	err := run([]string{"-run", "E99"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunSingleExperimentCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if err := run([]string{"-run", "E11", "-csv"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleExperimentMarkdown(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if err := run([]string{"-run", "E12", "-markdown"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}, io.Discard); err == nil {
		t.Fatal("bad flag accepted")
	}
}

// TestRunJSONDocument is the acceptance flow: -json -journal must produce a
// parseable document with provenance and per-experiment metrics, and a
// journal with per-round simnet events for the CONGEST experiments.
func TestRunJSONDocument(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	journalPath := filepath.Join(t.TempDir(), "run.jsonl")
	var buf bytes.Buffer
	if err := run([]string{"-run", "E6,E9", "-json", "-journal", journalPath, "-seed", "3"}, &buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Provenance struct {
			Tool       string `json:"tool"`
			Seed       uint64 `json:"seed"`
			GoVersion  string `json:"go_version"`
			GOMAXPROCS int    `json:"gomaxprocs"`
			Start      string `json:"start"`
			WallMS     float64
		} `json:"provenance"`
		Results struct {
			Experiments []struct {
				ID         string     `json:"id"`
				Columns    []string   `json:"columns"`
				Rows       [][]string `json:"rows"`
				DurationMS float64    `json:"duration_ms"`
				Metrics    *struct {
					Counters map[string]int64 `json:"counters"`
				} `json:"metrics"`
			} `json:"experiments"`
		} `json:"results"`
		Metrics *struct {
			Counters map[string]int64 `json:"counters"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("document not parseable: %v\n%s", err, buf.String())
	}
	if doc.Provenance.Tool != "unifbench" || doc.Provenance.Seed != 3 || doc.Provenance.GoVersion == "" {
		t.Errorf("provenance = %+v", doc.Provenance)
	}
	if len(doc.Results.Experiments) != 2 {
		t.Fatalf("got %d experiments, want 2", len(doc.Results.Experiments))
	}
	e6 := doc.Results.Experiments[0]
	if e6.ID != "E6" || len(e6.Rows) == 0 || e6.DurationMS <= 0 {
		t.Errorf("E6 entry = %+v", e6)
	}
	if e6.Metrics == nil || e6.Metrics.Counters["simnet.messages"] == 0 {
		t.Error("E6 entry missing per-experiment simnet metrics")
	}
	if doc.Metrics == nil || doc.Metrics.Counters["experiment.runs"] != 2 {
		t.Errorf("run-level metrics missing: %+v", doc.Metrics)
	}

	// Journal: every line parses; per-round simnet events present for E6.
	data, err := os.ReadFile(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var ev struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad journal line %q: %v", line, err)
		}
		kinds[ev.Kind]++
	}
	if kinds["run_start"] != 1 || kinds["run_end"] != 1 {
		t.Errorf("journal run events = %v", kinds)
	}
	if kinds["experiment_start"] != 2 || kinds["experiment_end"] != 2 {
		t.Errorf("journal experiment events = %v", kinds)
	}
	if kinds["sim_round"] == 0 || kinds["sim_run_end"] == 0 {
		t.Errorf("no per-round simnet events: %v", kinds)
	}
}

func TestRunProfiles(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	if err := run([]string{"-run", "E9", "-cpuprofile", cpu, "-memprofile", mem}, io.Discard); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s: %v", p, err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s empty", p)
		}
	}
}
