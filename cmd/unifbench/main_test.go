package main

import (
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownMode(t *testing.T) {
	err := run([]string{"-mode", "bogus"})
	if err == nil || !strings.Contains(err.Error(), "unknown mode") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	err := run([]string{"-run", "E99"})
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunSingleExperimentCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if err := run([]string{"-run", "E11", "-csv"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleExperimentMarkdown(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if err := run([]string{"-run", "E12", "-markdown"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
