// Command congestsim runs one CONGEST (or LOCAL) distributed uniformity
// test on a chosen topology and prints the execution summary: elected
// root, packages formed, rejecting virtual nodes, rounds, and message
// accounting.
//
// Usage:
//
//	congestsim [-model congest|local] [-topology random|line|ring|grid|star|tree]
//	           [-k 2000] [-n 4096] [-eps 1.0] [-dist uniform|twobump|zipf|halfsupport]
//	           [-seed 1] [-packaging] [-tau 0] [-radius 0] [-workers 0]
//	           [-trace] [-json] [-journal run.jsonl]
//
// -json replaces the human-readable summary with the same machine-readable
// run document unifbench -json emits (provenance + results + metrics);
// -journal streams per-round simulation events as JSON Lines.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"github.com/unifdist/unifdist/internal/congest"
	"github.com/unifdist/unifdist/internal/dist"
	"github.com/unifdist/unifdist/internal/graph"
	"github.com/unifdist/unifdist/internal/local"
	"github.com/unifdist/unifdist/internal/obs"
	"github.com/unifdist/unifdist/internal/rng"
	"github.com/unifdist/unifdist/internal/simnet"
	"github.com/unifdist/unifdist/internal/tester"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "congestsim:", err)
		os.Exit(1)
	}
}

// sinks bundles the run's output targets: the human-readable writer (nil in
// -json mode), the optional tracers, and the machine-readable document.
type sinks struct {
	out     io.Writer // nil when -json suppresses the running commentary
	summary *simnet.SummaryTracer
	reg     *obs.Registry
	journal *obs.Journal
}

func (s *sinks) printf(format string, args ...any) {
	if s.out != nil {
		fmt.Fprintf(s.out, format, args...)
	}
}

// tracer assembles the simnet tracer feeding every attached sink.
func (s *sinks) tracer(run string, budget int) simnet.Tracer {
	var ts []simnet.Tracer
	if s.summary != nil {
		ts = append(ts, s.summary)
	}
	if s.reg != nil {
		ts = append(ts, simnet.NewMetricsTracer(s.reg, budget))
	}
	if s.journal != nil {
		ts = append(ts, simnet.NewJSONLTracer(s.journal, run, budget))
	}
	return simnet.MultiTracer(ts...)
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("congestsim", flag.ContinueOnError)
	var (
		model    = fs.String("model", "congest", "congest or local")
		topology = fs.String("topology", "random", "random, line, ring, grid, star or tree")
		k        = fs.Int("k", 2000, "number of network nodes")
		n        = fs.Int("n", 4096, "domain size")
		eps      = fs.Float64("eps", 1.0, "L1 distance parameter")
		distName = fs.String("dist", "uniform", "uniform, twobump, zipf or halfsupport")
		seed     = fs.Uint64("seed", 1, "random seed")
		pkgOnly  = fs.Bool("packaging", false, "run τ-token packaging only (Theorem 5.1)")
		tau      = fs.Int("tau", 0, "package size (0 = solver's choice)")
		radius   = fs.Int("radius", 0, "LOCAL gathering radius (0 = solver's choice)")
		workers  = fs.Int("workers", 0, "simulator worker-pool size for the CONGEST model (0 = GOMAXPROCS); output is identical at any value")
		trace    = fs.Bool("trace", false, "print a per-round traffic summary (CONGEST model)")
		jsonFlag = fs.Bool("json", false, "emit a machine-readable run document instead of text")
		jrnlFlag = fs.String("journal", "", "write per-round events to this JSONL file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	g, err := buildTopology(*topology, *k, *seed)
	if err != nil {
		return err
	}
	d, err := buildDistribution(*distName, *n, *eps, *seed)
	if err != nil {
		return err
	}
	r := rng.New(*seed)
	tokens := make([]uint64, g.N())
	for i := range tokens {
		tokens[i] = uint64(d.Sample(r))
	}

	s := &sinks{out: stdout}
	if *jsonFlag {
		s.out = nil
		s.reg = obs.NewRegistry()
	}
	if *trace || *jsonFlag {
		s.summary = &simnet.SummaryTracer{}
	}
	prov := obs.CollectProvenance("congestsim", *model, *seed, args)
	if *jrnlFlag != "" {
		journal, err := obs.OpenJournal(*jrnlFlag)
		if err != nil {
			return err
		}
		defer journal.Close()
		s.journal = journal
		journal.Write(struct {
			Kind       string         `json:"kind"`
			Provenance obs.Provenance `json:"provenance"`
		}{Kind: "run_start", Provenance: prov})
	}

	s.printf("topology: %s (k=%d, D=%d)\n", g.Name(), g.N(), g.Diameter())
	s.printf("input: %s (true distance from uniform: %.4g)\n", d.Name(), dist.L1FromUniform(d))

	start := time.Now()
	var results map[string]any
	switch *model {
	case "congest":
		results, err = runCongest(g, tokens, *n, *k, *eps, *tau, *workers, *pkgOnly, s, r)
	case "local":
		results, err = runLocal(g, tokens, *n, *k, *eps, *radius, s, r)
	default:
		err = fmt.Errorf("unknown model %q", *model)
	}
	if err != nil {
		return err
	}
	prov.WallMS = float64(time.Since(start).Microseconds()) / 1e3

	if s.journal != nil {
		s.journal.Write(struct {
			Kind   string  `json:"kind"`
			WallMS float64 `json:"wall_ms"`
		}{Kind: "run_end", WallMS: prov.WallMS})
		if err := s.journal.Err(); err != nil {
			return err
		}
	}
	if *jsonFlag {
		results["topology"] = map[string]any{"name": g.Name(), "k": g.N(), "diameter": g.Diameter()}
		results["input"] = map[string]any{"dist": d.Name(), "n": *n, "l1_from_uniform": dist.L1FromUniform(d)}
		if s.summary != nil {
			results["rounds"] = s.summary.Rounds()
		}
		doc := obs.Document{Provenance: prov, Results: results}
		if s.reg != nil {
			snap := s.reg.Snapshot()
			doc.Metrics = &snap
		}
		return doc.WriteJSON(stdout)
	}
	return nil
}

func runCongest(g *graph.Graph, tokens []uint64, n, k int, eps float64, tau, workers int, pkgOnly bool, s *sinks, r *rng.RNG) (map[string]any, error) {
	tracer := s.tracer("congestsim", congest.Bandwidth())
	dumpTrace := func() error {
		if s.summary == nil || s.out == nil {
			return nil
		}
		fmt.Fprintln(s.out, "\nper-round traffic:")
		return s.summary.Dump(s.out)
	}
	if pkgOnly {
		if tau == 0 {
			tau = 8
		}
		res, err := congest.RunTokenPackagingTracedWorkers(g, tokens, tau, r.Uint64(), tracer, workers)
		if err != nil {
			return nil, err
		}
		s.printf("token packaging: τ=%d\n", tau)
		s.printf("  root (max ID): %d\n", res.Root)
		s.printf("  packages: %d, discarded: %d (≤ τ−1 = %d)\n", len(res.Packages), res.Discarded, tau-1)
		s.printf("  rounds: %d, messages: %d, bytes: %d, max message: %dB\n",
			res.Stats.Rounds, res.Stats.Messages, res.Stats.Bytes, res.Stats.MaxMessageBytes)
		return map[string]any{
			"mode":      "packaging",
			"tau":       tau,
			"root":      res.Root,
			"packages":  len(res.Packages),
			"discarded": res.Discarded,
			"stats":     res.Stats,
		}, dumpTrace()
	}
	p, err := congest.SolveParamsCalibrated(n, k, eps)
	if err != nil {
		return nil, err
	}
	if tau != 0 && tau != p.Tau {
		// Re-derive the per-package error and threshold for the overridden
		// package size (midpoint between the expected rejecting-package
		// counts under uniform and far inputs).
		p.Tau = tau
		p.Delta = float64(tau) * float64(tau-1) / (2 * float64(n))
		ell := k / tau
		pU := 1 - tester.UniformNoCollisionProb(n, tau)
		pF := tester.FarRejectPoisson(n, tau, eps)
		p.EtaUniform = float64(ell) * pU
		p.EtaFar = float64(ell) * pF
		p.T = int((p.EtaUniform+p.EtaFar)/2) + 1
		p.VirtualNodes = ell
		p.Feasible = false // overridden by hand; no solver guarantee
	}
	s.printf("params: τ=%d, T=%d, δ=%.4g, feasible=%v, calibrated=%v\n",
		p.Tau, p.T, p.Delta, p.Feasible, p.Calibrated)
	res, err := congest.RunUniformityTracedWorkers(g, tokens, p, r.Uint64(), tracer, workers)
	if err != nil {
		return nil, err
	}
	verdict := "UNIFORM (accept)"
	if !res.Accept {
		verdict = "FAR FROM UNIFORM (reject)"
	}
	s.printf("verdict: %s\n", verdict)
	s.printf("  root: %d, rejecting packages: %d/%d (threshold T=%d)\n",
		res.Root, res.Rejects, res.Virtuals, p.T)
	s.printf("  rounds: %d, messages: %d, bytes: %d, max message: %dB\n",
		res.Stats.Rounds, res.Stats.Messages, res.Stats.Bytes, res.Stats.MaxMessageBytes)
	return map[string]any{
		"mode":     "uniformity",
		"params":   p,
		"accept":   res.Accept,
		"root":     res.Root,
		"rejects":  res.Rejects,
		"virtuals": res.Virtuals,
		"stats":    res.Stats,
	}, dumpTrace()
}

func runLocal(g *graph.Graph, tokens []uint64, n, k int, eps float64, radius int, s *sinks, r *rng.RNG) (map[string]any, error) {
	p := local.Params{N: n, K: k, Eps: eps, P: 1.0 / 3, R: radius}
	if radius == 0 {
		solved, err := local.SolveLocal(n, k, eps, 1.0/3)
		if err != nil {
			return nil, err
		}
		p = solved
	}
	if p.AND.M == 0 {
		p.AND.M = 1
	}
	s.printf("params: r=%d, virtual nodes ≤ %d, m=%d, feasible=%v\n",
		p.R, 2*k/maxInt(p.R, 1), p.AND.M, p.Feasible)
	res, err := local.RunUniformity(g, tokens, p, r.Uint64())
	if err != nil {
		return nil, err
	}
	verdict := "UNIFORM (accept)"
	if !res.Accept {
		verdict = "FAR FROM UNIFORM (reject)"
	}
	s.printf("verdict: %s\n", verdict)
	s.printf("  MIS nodes: %d, rejecting: %d\n", res.MISNodes, res.Rejecting)
	s.printf("  samples per MIS node: min %d, max %d (guarantee ≥ r/2 = %d)\n",
		res.MinSamples, res.MaxSamples, p.R/2)
	s.printf("  total cost: %d G-rounds\n", res.GRounds)
	return map[string]any{
		"mode":        "local",
		"params":      p,
		"accept":      res.Accept,
		"mis_nodes":   res.MISNodes,
		"rejecting":   res.Rejecting,
		"min_samples": res.MinSamples,
		"max_samples": res.MaxSamples,
		"g_rounds":    res.GRounds,
	}, nil
}

func buildTopology(name string, k int, seed uint64) (*graph.Graph, error) {
	switch name {
	case "random":
		return graph.NewRandomConnected(k, 6.0/float64(k), seed), nil
	case "line":
		return graph.NewLine(k), nil
	case "ring":
		return graph.NewRing(k), nil
	case "grid":
		cols := 1
		for cols*cols < k {
			cols++
		}
		rows := (k + cols - 1) / cols
		return graph.NewGrid(rows, cols), nil
	case "star":
		return graph.NewStar(k), nil
	case "tree":
		return graph.NewBalancedTree(k, 2), nil
	default:
		return nil, fmt.Errorf("unknown topology %q", name)
	}
}

func buildDistribution(name string, n int, eps float64, seed uint64) (dist.Distribution, error) {
	switch name {
	case "uniform":
		return dist.NewUniform(n), nil
	case "twobump":
		if eps <= 0 || eps > 1 {
			eps = 1
		}
		return dist.NewTwoBump(n, eps, seed), nil
	case "zipf":
		return dist.NewZipf(n, 1.2), nil
	case "halfsupport":
		return dist.NewHalfSupport(n), nil
	default:
		return nil, fmt.Errorf("unknown distribution %q", name)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
