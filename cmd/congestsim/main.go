// Command congestsim runs one CONGEST (or LOCAL) distributed uniformity
// test on a chosen topology and prints the execution summary: elected
// root, packages formed, rejecting virtual nodes, rounds, and message
// accounting.
//
// Usage:
//
//	congestsim [-model congest|local] [-topology random|line|ring|grid|star|tree]
//	           [-k 2000] [-n 4096] [-eps 1.0] [-dist uniform|twobump|zipf|halfsupport]
//	           [-seed 1] [-packaging] [-tau 0] [-radius 0]
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/unifdist/unifdist/internal/congest"
	"github.com/unifdist/unifdist/internal/dist"
	"github.com/unifdist/unifdist/internal/graph"
	"github.com/unifdist/unifdist/internal/local"
	"github.com/unifdist/unifdist/internal/rng"
	"github.com/unifdist/unifdist/internal/simnet"
	"github.com/unifdist/unifdist/internal/tester"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "congestsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("congestsim", flag.ContinueOnError)
	var (
		model    = fs.String("model", "congest", "congest or local")
		topology = fs.String("topology", "random", "random, line, ring, grid, star or tree")
		k        = fs.Int("k", 2000, "number of network nodes")
		n        = fs.Int("n", 4096, "domain size")
		eps      = fs.Float64("eps", 1.0, "L1 distance parameter")
		distName = fs.String("dist", "uniform", "uniform, twobump, zipf or halfsupport")
		seed     = fs.Uint64("seed", 1, "random seed")
		pkgOnly  = fs.Bool("packaging", false, "run τ-token packaging only (Theorem 5.1)")
		tau      = fs.Int("tau", 0, "package size (0 = solver's choice)")
		radius   = fs.Int("radius", 0, "LOCAL gathering radius (0 = solver's choice)")
		trace    = fs.Bool("trace", false, "print a per-round traffic summary (CONGEST model)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	g, err := buildTopology(*topology, *k, *seed)
	if err != nil {
		return err
	}
	d, err := buildDistribution(*distName, *n, *eps, *seed)
	if err != nil {
		return err
	}
	r := rng.New(*seed)
	tokens := make([]uint64, g.N())
	for i := range tokens {
		tokens[i] = uint64(d.Sample(r))
	}
	fmt.Printf("topology: %s (k=%d, D=%d)\n", g.Name(), g.N(), g.Diameter())
	fmt.Printf("input: %s (true distance from uniform: %.4g)\n", d.Name(), dist.L1FromUniform(d))

	switch *model {
	case "congest":
		return runCongest(g, tokens, *n, *k, *eps, *tau, *pkgOnly, *trace, r)
	case "local":
		return runLocal(g, tokens, *n, *k, *eps, *radius, r)
	default:
		return fmt.Errorf("unknown model %q", *model)
	}
}

func runCongest(g *graph.Graph, tokens []uint64, n, k int, eps float64, tau int, pkgOnly, trace bool, r *rng.RNG) error {
	var tracer *simnet.SummaryTracer
	if trace {
		tracer = &simnet.SummaryTracer{}
	}
	dumpTrace := func() error {
		if tracer == nil {
			return nil
		}
		fmt.Println("\nper-round traffic:")
		return tracer.Dump(os.Stdout)
	}
	if pkgOnly {
		if tau == 0 {
			tau = 8
		}
		res, err := congest.RunTokenPackagingTraced(g, tokens, tau, r.Uint64(), tracerOrNil(tracer))
		if err != nil {
			return err
		}
		fmt.Printf("token packaging: τ=%d\n", tau)
		fmt.Printf("  root (max ID): %d\n", res.Root)
		fmt.Printf("  packages: %d, discarded: %d (≤ τ−1 = %d)\n", len(res.Packages), res.Discarded, tau-1)
		fmt.Printf("  rounds: %d, messages: %d, bytes: %d, max message: %dB\n",
			res.Stats.Rounds, res.Stats.Messages, res.Stats.Bytes, res.Stats.MaxMessageBytes)
		return dumpTrace()
	}
	p, err := congest.SolveParamsCalibrated(n, k, eps)
	if err != nil {
		return err
	}
	if tau != 0 && tau != p.Tau {
		// Re-derive the per-package error and threshold for the overridden
		// package size (midpoint between the expected rejecting-package
		// counts under uniform and far inputs).
		p.Tau = tau
		p.Delta = float64(tau) * float64(tau-1) / (2 * float64(n))
		ell := k / tau
		pU := 1 - tester.UniformNoCollisionProb(n, tau)
		pF := tester.FarRejectPoisson(n, tau, eps)
		p.EtaUniform = float64(ell) * pU
		p.EtaFar = float64(ell) * pF
		p.T = int((p.EtaUniform+p.EtaFar)/2) + 1
		p.VirtualNodes = ell
		p.Feasible = false // overridden by hand; no solver guarantee
	}
	fmt.Printf("params: τ=%d, T=%d, δ=%.4g, feasible=%v, calibrated=%v\n",
		p.Tau, p.T, p.Delta, p.Feasible, p.Calibrated)
	res, err := congest.RunUniformityTraced(g, tokens, p, r.Uint64(), tracerOrNil(tracer))
	if err != nil {
		return err
	}
	verdict := "UNIFORM (accept)"
	if !res.Accept {
		verdict = "FAR FROM UNIFORM (reject)"
	}
	fmt.Printf("verdict: %s\n", verdict)
	fmt.Printf("  root: %d, rejecting packages: %d/%d (threshold T=%d)\n",
		res.Root, res.Rejects, res.Virtuals, p.T)
	fmt.Printf("  rounds: %d, messages: %d, bytes: %d, max message: %dB\n",
		res.Stats.Rounds, res.Stats.Messages, res.Stats.Bytes, res.Stats.MaxMessageBytes)
	return dumpTrace()
}

// tracerOrNil avoids handing a typed-nil interface to the simulator.
func tracerOrNil(t *simnet.SummaryTracer) simnet.Tracer {
	if t == nil {
		return nil
	}
	return t
}

func runLocal(g *graph.Graph, tokens []uint64, n, k int, eps float64, radius int, r *rng.RNG) error {
	p := local.Params{N: n, K: k, Eps: eps, P: 1.0 / 3, R: radius}
	if radius == 0 {
		solved, err := local.SolveLocal(n, k, eps, 1.0/3)
		if err != nil {
			return err
		}
		p = solved
	}
	if p.AND.M == 0 {
		p.AND.M = 1
	}
	fmt.Printf("params: r=%d, virtual nodes ≤ %d, m=%d, feasible=%v\n",
		p.R, 2*k/maxInt(p.R, 1), p.AND.M, p.Feasible)
	res, err := local.RunUniformity(g, tokens, p, r.Uint64())
	if err != nil {
		return err
	}
	verdict := "UNIFORM (accept)"
	if !res.Accept {
		verdict = "FAR FROM UNIFORM (reject)"
	}
	fmt.Printf("verdict: %s\n", verdict)
	fmt.Printf("  MIS nodes: %d, rejecting: %d\n", res.MISNodes, res.Rejecting)
	fmt.Printf("  samples per MIS node: min %d, max %d (guarantee ≥ r/2 = %d)\n",
		res.MinSamples, res.MaxSamples, p.R/2)
	fmt.Printf("  total cost: %d G-rounds\n", res.GRounds)
	return nil
}

func buildTopology(name string, k int, seed uint64) (*graph.Graph, error) {
	switch name {
	case "random":
		return graph.NewRandomConnected(k, 6.0/float64(k), seed), nil
	case "line":
		return graph.NewLine(k), nil
	case "ring":
		return graph.NewRing(k), nil
	case "grid":
		cols := 1
		for cols*cols < k {
			cols++
		}
		rows := (k + cols - 1) / cols
		return graph.NewGrid(rows, cols), nil
	case "star":
		return graph.NewStar(k), nil
	case "tree":
		return graph.NewBalancedTree(k, 2), nil
	default:
		return nil, fmt.Errorf("unknown topology %q", name)
	}
}

func buildDistribution(name string, n int, eps float64, seed uint64) (dist.Distribution, error) {
	switch name {
	case "uniform":
		return dist.NewUniform(n), nil
	case "twobump":
		if eps <= 0 || eps > 1 {
			eps = 1
		}
		return dist.NewTwoBump(n, eps, seed), nil
	case "zipf":
		return dist.NewZipf(n, 1.2), nil
	case "halfsupport":
		return dist.NewHalfSupport(n), nil
	default:
		return nil, fmt.Errorf("unknown distribution %q", name)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
