package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunCongestSmoke(t *testing.T) {
	if err := run([]string{"-k", "80", "-n", "4096", "-topology", "random"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunPackagingSmoke(t *testing.T) {
	if err := run([]string{"-k", "50", "-packaging", "-tau", "4", "-topology", "tree"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunLocalSmoke(t *testing.T) {
	if err := run([]string{"-model", "local", "-k", "60", "-n", "1048576", "-radius", "3"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunTraceSmoke(t *testing.T) {
	if err := run([]string{"-k", "40", "-trace", "-topology", "ring"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunJSONDocument(t *testing.T) {
	journalPath := filepath.Join(t.TempDir(), "run.jsonl")
	var buf bytes.Buffer
	if err := run([]string{"-k", "60", "-n", "4096", "-topology", "ring", "-json", "-journal", journalPath}, &buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Provenance struct {
			Tool string `json:"tool"`
			Seed uint64 `json:"seed"`
		} `json:"provenance"`
		Results struct {
			Mode   string `json:"mode"`
			Accept *bool  `json:"accept"`
			Stats  struct {
				Rounds   int `json:"Rounds"`
				Messages int `json:"Messages"`
			} `json:"stats"`
			Rounds []struct {
				Round    int `json:"Round"`
				Messages int `json:"Messages"`
			} `json:"rounds"`
		} `json:"results"`
		Metrics *struct {
			Counters map[string]int64 `json:"counters"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("document not parseable: %v\n%s", err, buf.String())
	}
	if doc.Provenance.Tool != "congestsim" {
		t.Errorf("tool = %q", doc.Provenance.Tool)
	}
	if doc.Results.Mode != "uniformity" || doc.Results.Accept == nil {
		t.Errorf("results = %+v", doc.Results)
	}
	if doc.Results.Stats.Messages == 0 || len(doc.Results.Rounds) == 0 {
		t.Errorf("missing stats/rounds: %+v", doc.Results)
	}
	if doc.Metrics == nil || doc.Metrics.Counters["simnet.messages"] == 0 {
		t.Errorf("metrics missing: %+v", doc.Metrics)
	}

	data, err := os.ReadFile(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var ev struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad journal line %q: %v", line, err)
		}
		kinds[ev.Kind]++
	}
	if kinds["run_start"] != 1 || kinds["run_end"] != 1 || kinds["sim_round"] == 0 {
		t.Errorf("journal kinds = %v", kinds)
	}
}

func TestRunPackagingJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-k", "50", "-packaging", "-tau", "4", "-json"}, &buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("document not parseable: %v", err)
	}
	results := doc["results"].(map[string]any)
	if results["mode"] != "packaging" || results["packages"].(float64) <= 0 {
		t.Errorf("results = %v", results)
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{name: "bad model", args: []string{"-model", "bogus"}, want: "unknown model"},
		{name: "bad topology", args: []string{"-topology", "bogus"}, want: "unknown topology"},
		{name: "bad dist", args: []string{"-dist", "bogus"}, want: "unknown distribution"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args, io.Discard)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want %q", err, tc.want)
			}
		})
	}
}

func TestBuildTopologies(t *testing.T) {
	for _, name := range []string{"random", "line", "ring", "grid", "star", "tree"} {
		g, err := buildTopology(name, 30, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g.N() < 30 {
			t.Errorf("%s: %d nodes, want ≥ 30", name, g.N())
		}
		if !g.IsConnected() {
			t.Errorf("%s: disconnected", name)
		}
	}
}

func TestBuildDistributions(t *testing.T) {
	for _, name := range []string{"uniform", "twobump", "zipf", "halfsupport"} {
		d, err := buildDistribution(name, 64, 1, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d.N() != 64 {
			t.Errorf("%s: domain %d", name, d.N())
		}
	}
}
