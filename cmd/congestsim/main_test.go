package main

import (
	"strings"
	"testing"
)

func TestRunCongestSmoke(t *testing.T) {
	if err := run([]string{"-k", "80", "-n", "4096", "-topology", "random"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunPackagingSmoke(t *testing.T) {
	if err := run([]string{"-k", "50", "-packaging", "-tau", "4", "-topology", "tree"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunLocalSmoke(t *testing.T) {
	if err := run([]string{"-model", "local", "-k", "60", "-n", "1048576", "-radius", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunTraceSmoke(t *testing.T) {
	if err := run([]string{"-k", "40", "-trace", "-topology", "ring"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{name: "bad model", args: []string{"-model", "bogus"}, want: "unknown model"},
		{name: "bad topology", args: []string{"-topology", "bogus"}, want: "unknown topology"},
		{name: "bad dist", args: []string{"-dist", "bogus"}, want: "unknown distribution"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want %q", err, tc.want)
			}
		})
	}
}

func TestBuildTopologies(t *testing.T) {
	for _, name := range []string{"random", "line", "ring", "grid", "star", "tree"} {
		g, err := buildTopology(name, 30, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g.N() < 30 {
			t.Errorf("%s: %d nodes, want ≥ 30", name, g.N())
		}
		if !g.IsConnected() {
			t.Errorf("%s: disconnected", name)
		}
	}
}

func TestBuildDistributions(t *testing.T) {
	for _, name := range []string{"uniform", "twobump", "zipf", "halfsupport"} {
		d, err := buildDistribution(name, 64, 1, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d.N() != 64 {
			t.Errorf("%s: domain %d", name, d.N())
		}
	}
}
