// Command gaptest runs a centralized uniformity tester on synthetic
// samples and reports empirical acceptance statistics against the paper's
// guarantees.
//
// Usage:
//
//	gaptest [-tester single|amplified|counting] [-n 65536] [-delta 0.05]
//	        [-eps 1.0] [-m 3] [-dist uniform|twobump|zipf|halfsupport]
//	        [-trials 10000] [-seed 1] [-json] [-journal run.jsonl]
//	gaptest -stdin [-tester ...] [-n 65536]   # read whitespace-separated samples
//
// With -stdin, samples are read as whitespace-separated integers in
// [0, n) and the tester runs once on consecutive windows of its sample
// size, reporting the fraction of rejecting windows.
//
// -json replaces the text report with the same machine-readable run
// document the other commands emit (provenance + results); -journal
// records run start/end events as JSON Lines.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"time"

	"github.com/unifdist/unifdist/internal/dist"
	"github.com/unifdist/unifdist/internal/obs"
	"github.com/unifdist/unifdist/internal/rng"
	"github.com/unifdist/unifdist/internal/tester"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gaptest:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("gaptest", flag.ContinueOnError)
	var (
		testerName = fs.String("tester", "single", "single, amplified or counting")
		n          = fs.Int("n", 1<<16, "domain size")
		delta      = fs.Float64("delta", 0.05, "completeness error δ of A_δ")
		eps        = fs.Float64("eps", 1.0, "L1 distance parameter")
		m          = fs.Int("m", 3, "repetitions (amplified tester)")
		distName   = fs.String("dist", "twobump", "uniform, twobump, zipf or halfsupport")
		trials     = fs.Int("trials", 10000, "number of independent runs")
		seed       = fs.Uint64("seed", 1, "random seed")
		stdin      = fs.Bool("stdin", false, "read samples from standard input instead of generating them")
		jsonFlag   = fs.Bool("json", false, "emit a machine-readable run document instead of text")
		jrnlFlag   = fs.String("journal", "", "write run events to this JSONL file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	out := stdout
	if *jsonFlag {
		out = io.Discard
	}
	results := map[string]any{"tester": *testerName}

	var (
		tst tester.Tester
		err error
	)
	switch *testerName {
	case "single":
		var sc *tester.SingleCollision
		sc, err = tester.NewSingleCollision(*n, *delta, *eps)
		if err == nil {
			p := sc.Params()
			fmt.Fprintf(out, "single-collision tester A_δ: s=%d, realized δ=%.4g, γ=%.4g, gap=%.4g, rigorous=%v\n",
				p.S, p.Delta, p.Gamma, p.Alpha, p.Rigorous)
			results["params"] = p
			tst = sc
		}
	case "amplified":
		var am *tester.Amplified
		am, err = tester.NewAmplified(*n, *delta, *eps, *m)
		if err == nil {
			fmt.Fprintf(out, "amplified tester: m=%d, samples=%d, completeness error=%.4g, gap=%.4g\n",
				am.Repetitions(), am.SampleSize(), am.CompletenessError(), am.Gap())
			results["params"] = map[string]any{
				"m": am.Repetitions(), "samples": am.SampleSize(),
				"delta": am.CompletenessError(), "gap": am.Gap(),
			}
			tst = am
		}
	case "counting":
		var cc *tester.CollisionCounting
		cc, err = tester.NewCollisionCounting(*n, *eps, 0)
		if err == nil {
			fmt.Fprintf(out, "collision-counting baseline: s=%d, threshold=%.4g\n",
				cc.SampleSize(), cc.Threshold())
			results["params"] = map[string]any{"samples": cc.SampleSize(), "threshold": cc.Threshold()}
			tst = cc
		}
	default:
		return fmt.Errorf("unknown tester %q", *testerName)
	}
	if err != nil {
		return err
	}

	prov := obs.CollectProvenance("gaptest", *testerName, *seed, args)
	var journal *obs.Journal
	if *jrnlFlag != "" {
		journal, err = obs.OpenJournal(*jrnlFlag)
		if err != nil {
			return err
		}
		defer journal.Close()
		journal.Write(struct {
			Kind       string         `json:"kind"`
			Provenance obs.Provenance `json:"provenance"`
		}{Kind: "run_start", Provenance: prov})
	}
	start := time.Now()

	if *stdin {
		windows, rejects, err := runOnStdin(tst, *n, out)
		if err != nil {
			return err
		}
		results["windows"] = windows
		results["rejecting_windows"] = rejects
	} else {
		d, err := buildDistribution(*distName, *n, *eps, *seed)
		if err != nil {
			return err
		}
		r := rng.New(*seed)
		fmt.Fprintf(out, "input: %s (distance from uniform: %.4g)\n", d.Name(), dist.L1FromUniform(d))
		rej := tester.EstimateRejectProb(tst, d, *trials, r)
		fmt.Fprintf(out, "rejection probability over %d trials: %.4f\n", *trials, rej)
		u := dist.NewUniform(*n)
		rejU := tester.EstimateRejectProb(tst, u, *trials, r)
		fmt.Fprintf(out, "rejection probability on uniform:     %.4f\n", rejU)
		if rejU > 0 {
			fmt.Fprintf(out, "empirical gap: %.3f\n", rej/rejU)
		}
		results["input"] = map[string]any{"dist": d.Name(), "n": *n, "l1_from_uniform": dist.L1FromUniform(d)}
		results["trials"] = *trials
		results["reject_prob"] = rej
		results["reject_prob_uniform"] = rejU
		if rejU > 0 {
			results["empirical_gap"] = rej / rejU
		}
	}
	prov.WallMS = float64(time.Since(start).Microseconds()) / 1e3

	if journal != nil {
		journal.Write(struct {
			Kind   string  `json:"kind"`
			WallMS float64 `json:"wall_ms"`
		}{Kind: "run_end", WallMS: prov.WallMS})
		if err := journal.Err(); err != nil {
			return err
		}
	}
	if *jsonFlag {
		return obs.Document{Provenance: prov, Results: results}.WriteJSON(stdout)
	}
	return nil
}

// runOnStdin slides the tester over consecutive windows of piped samples.
func runOnStdin(tst tester.Tester, n int, out io.Writer) (windows, rejects int, err error) {
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	scanner.Split(bufio.ScanWords)
	var samples []int
	for scanner.Scan() {
		v, err := strconv.Atoi(scanner.Text())
		if err != nil {
			return 0, 0, fmt.Errorf("parse sample %q: %w", scanner.Text(), err)
		}
		if v < 0 || v >= n {
			return 0, 0, fmt.Errorf("sample %d outside domain [0, %d)", v, n)
		}
		samples = append(samples, v)
	}
	if err := scanner.Err(); err != nil {
		return 0, 0, err
	}
	s := tst.SampleSize()
	if len(samples) < s {
		return 0, 0, fmt.Errorf("got %d samples, tester needs at least %d", len(samples), s)
	}
	for i := 0; i+s <= len(samples); i += s {
		windows++
		if !tst.Test(samples[i : i+s]) {
			rejects++
		}
	}
	fmt.Fprintf(out, "%d samples -> %d windows of %d\n", len(samples), windows, s)
	fmt.Fprintf(out, "rejecting windows: %d/%d (%.3f)\n", rejects, windows, float64(rejects)/float64(windows))
	return windows, rejects, nil
}

func buildDistribution(name string, n int, eps float64, seed uint64) (dist.Distribution, error) {
	switch name {
	case "uniform":
		return dist.NewUniform(n), nil
	case "twobump":
		if eps <= 0 || eps > 1 {
			eps = 1
		}
		return dist.NewTwoBump(n, eps, seed), nil
	case "zipf":
		return dist.NewZipf(n, 1.2), nil
	case "halfsupport":
		return dist.NewHalfSupport(n), nil
	default:
		return nil, fmt.Errorf("unknown distribution %q", name)
	}
}
