package main

import (
	"strings"
	"testing"
)

func TestRunSingleTester(t *testing.T) {
	if err := run([]string{"-tester", "single", "-n", "4096", "-trials", "200"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunAmplifiedTester(t *testing.T) {
	if err := run([]string{"-tester", "amplified", "-n", "4096", "-m", "2", "-trials", "100"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCountingTester(t *testing.T) {
	if err := run([]string{"-tester", "counting", "-n", "4096", "-trials", "50"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownTester(t *testing.T) {
	err := run([]string{"-tester", "bogus"})
	if err == nil || !strings.Contains(err.Error(), "unknown tester") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunUnknownDistribution(t *testing.T) {
	err := run([]string{"-dist", "bogus", "-trials", "10"})
	if err == nil || !strings.Contains(err.Error(), "unknown distribution") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunBadDelta(t *testing.T) {
	if err := run([]string{"-delta", "2"}); err == nil {
		t.Fatal("delta=2 accepted")
	}
}
