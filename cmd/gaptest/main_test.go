package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleTester(t *testing.T) {
	if err := run([]string{"-tester", "single", "-n", "4096", "-trials", "200"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunAmplifiedTester(t *testing.T) {
	if err := run([]string{"-tester", "amplified", "-n", "4096", "-m", "2", "-trials", "100"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunCountingTester(t *testing.T) {
	if err := run([]string{"-tester", "counting", "-n", "4096", "-trials", "50"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownTester(t *testing.T) {
	err := run([]string{"-tester", "bogus"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "unknown tester") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunUnknownDistribution(t *testing.T) {
	err := run([]string{"-dist", "bogus", "-trials", "10"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "unknown distribution") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunBadDelta(t *testing.T) {
	if err := run([]string{"-delta", "2"}, io.Discard); err == nil {
		t.Fatal("delta=2 accepted")
	}
}

func TestRunJSONDocument(t *testing.T) {
	journalPath := filepath.Join(t.TempDir(), "run.jsonl")
	var buf bytes.Buffer
	if err := run([]string{"-tester", "single", "-n", "4096", "-trials", "200", "-json", "-journal", journalPath}, &buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Provenance struct {
			Tool string `json:"tool"`
		} `json:"provenance"`
		Results struct {
			Tester            string   `json:"tester"`
			Trials            int      `json:"trials"`
			RejectProb        *float64 `json:"reject_prob"`
			RejectProbUniform *float64 `json:"reject_prob_uniform"`
		} `json:"results"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("document not parseable: %v\n%s", err, buf.String())
	}
	if doc.Provenance.Tool != "gaptest" {
		t.Errorf("tool = %q", doc.Provenance.Tool)
	}
	if doc.Results.Tester != "single" || doc.Results.Trials != 200 ||
		doc.Results.RejectProb == nil || doc.Results.RejectProbUniform == nil {
		t.Errorf("results = %+v", doc.Results)
	}

	data, err := os.ReadFile(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var ev struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad journal line %q: %v", line, err)
		}
		kinds[ev.Kind]++
	}
	if kinds["run_start"] != 1 || kinds["run_end"] != 1 {
		t.Errorf("journal kinds = %v", kinds)
	}
}
