package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// moduleRoot locates the repository root via go env GOMOD.
func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		t.Fatal("not in a module")
	}
	return filepath.Dir(gomod)
}

// TestSelfClean is the enforcement test: the repository's own tree must
// stay unifvet-clean. A failure here means a determinism invariant
// regressed (or needs an explicit //unifvet:allow with a reason).
func TestSelfClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks the whole module")
	}
	var buf bytes.Buffer
	code, err := run([]string{"./..."}, moduleRoot(t), &buf)
	if err != nil {
		t.Fatalf("unifvet: %v", err)
	}
	if code != 0 {
		t.Fatalf("unifvet found violations in the tree:\n%s", buf.String())
	}
}

// writeTempModule lays down a self-contained module with the given file.
func writeTempModule(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module tmpvet\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "main.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestInjectedViolation verifies the driver exits non-zero when a
// violation is present.
func TestInjectedViolation(t *testing.T) {
	dir := writeTempModule(t, `package main

import "math/rand"

func main() { _ = rand.Intn(6) }
`)
	var buf bytes.Buffer
	code, err := run([]string{"./..."}, dir, &buf)
	if err != nil {
		t.Fatalf("unifvet: %v", err)
	}
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; output:\n%s", code, buf.String())
	}
	if !strings.Contains(buf.String(), "[detrand]") {
		t.Fatalf("expected a detrand finding, got:\n%s", buf.String())
	}
}

// TestSuppressedViolation verifies the allow directive flows through the
// driver end to end.
func TestSuppressedViolation(t *testing.T) {
	dir := writeTempModule(t, `package main

import "math/rand" //unifvet:allow detrand test fixture justifies itself

func main() { _ = rand.Intn(6) }
`)
	var buf bytes.Buffer
	code, err := run([]string{"./..."}, dir, &buf)
	if err != nil {
		t.Fatalf("unifvet: %v", err)
	}
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; output:\n%s", code, buf.String())
	}
}

// TestReasonlessDirectiveFails verifies a directive without a reason is
// itself a finding.
func TestReasonlessDirectiveFails(t *testing.T) {
	dir := writeTempModule(t, `package main

import "math/rand" //unifvet:allow detrand

func main() { _ = rand.Intn(6) }
`)
	var buf bytes.Buffer
	code, err := run([]string{"./..."}, dir, &buf)
	if err != nil {
		t.Fatalf("unifvet: %v", err)
	}
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; output:\n%s", code, buf.String())
	}
	if !strings.Contains(buf.String(), "needs a trailing reason") {
		t.Fatalf("expected a directive finding, got:\n%s", buf.String())
	}
}

// TestJSONEnvelope verifies -json emits the shared obs run-document shape.
func TestJSONEnvelope(t *testing.T) {
	dir := writeTempModule(t, `package main

import "math/rand"

func main() { _ = rand.Intn(6) }
`)
	var buf bytes.Buffer
	code, err := run([]string{"-json", "./..."}, dir, &buf)
	if err != nil {
		t.Fatalf("unifvet: %v", err)
	}
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	var doc struct {
		Provenance struct {
			Tool string `json:"tool"`
		} `json:"provenance"`
		Results struct {
			Clean    bool `json:"clean"`
			Findings []struct {
				Analyzer string `json:"analyzer"`
				File     string `json:"file"`
				Line     int    `json:"line"`
				Message  string `json:"message"`
			} `json:"findings"`
		} `json:"results"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("decode run document: %v\n%s", err, buf.String())
	}
	if doc.Provenance.Tool != "unifvet" {
		t.Errorf("provenance.tool = %q, want unifvet", doc.Provenance.Tool)
	}
	if doc.Results.Clean {
		t.Error("clean = true with findings present")
	}
	if len(doc.Results.Findings) == 0 || doc.Results.Findings[0].Analyzer != "detrand" {
		t.Errorf("findings = %+v, want a detrand finding", doc.Results.Findings)
	}
}

// TestAnalyzersFlag lists the suite.
func TestAnalyzersFlag(t *testing.T) {
	var buf bytes.Buffer
	code, err := run([]string{"-analyzers"}, ".", &buf)
	if err != nil || code != 0 {
		t.Fatalf("run: code=%d err=%v", code, err)
	}
	for _, name := range []string{"detrand", "wallclock", "maporder", "sharedrng", "obsnil"} {
		if !strings.Contains(buf.String(), name) {
			t.Errorf("analyzer list missing %s:\n%s", name, buf.String())
		}
	}
}
