package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// moduleRoot locates the repository root via go env GOMOD.
func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		t.Fatal("not in a module")
	}
	return filepath.Dir(gomod)
}

// TestSelfClean is the enforcement test: the repository's own tree must
// stay unifvet-clean. A failure here means a determinism invariant
// regressed (or needs an explicit //unifvet:allow with a reason).
func TestSelfClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks the whole module")
	}
	var buf bytes.Buffer
	code, err := run([]string{"./..."}, moduleRoot(t), &buf)
	if err != nil {
		t.Fatalf("unifvet: %v", err)
	}
	if code != 0 {
		t.Fatalf("unifvet found violations in the tree:\n%s", buf.String())
	}
}

// writeTempModule lays down a self-contained module with the given file.
func writeTempModule(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module tmpvet\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "main.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestInjectedViolation verifies the driver exits non-zero when a
// violation is present.
func TestInjectedViolation(t *testing.T) {
	dir := writeTempModule(t, `package main

import "math/rand"

func main() { _ = rand.Intn(6) }
`)
	var buf bytes.Buffer
	code, err := run([]string{"./..."}, dir, &buf)
	if err != nil {
		t.Fatalf("unifvet: %v", err)
	}
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; output:\n%s", code, buf.String())
	}
	if !strings.Contains(buf.String(), "[detrand]") {
		t.Fatalf("expected a detrand finding, got:\n%s", buf.String())
	}
}

// TestSuppressedViolation verifies the allow directive flows through the
// driver end to end.
func TestSuppressedViolation(t *testing.T) {
	dir := writeTempModule(t, `package main

import "math/rand" //unifvet:allow detrand test fixture justifies itself

func main() { _ = rand.Intn(6) }
`)
	var buf bytes.Buffer
	code, err := run([]string{"./..."}, dir, &buf)
	if err != nil {
		t.Fatalf("unifvet: %v", err)
	}
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; output:\n%s", code, buf.String())
	}
}

// TestReasonlessDirectiveFails verifies a directive without a reason is
// itself a finding.
func TestReasonlessDirectiveFails(t *testing.T) {
	dir := writeTempModule(t, `package main

import "math/rand" //unifvet:allow detrand

func main() { _ = rand.Intn(6) }
`)
	var buf bytes.Buffer
	code, err := run([]string{"./..."}, dir, &buf)
	if err != nil {
		t.Fatalf("unifvet: %v", err)
	}
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; output:\n%s", code, buf.String())
	}
	if !strings.Contains(buf.String(), "needs a trailing reason") {
		t.Fatalf("expected a directive finding, got:\n%s", buf.String())
	}
}

// TestJSONEnvelope verifies -json emits the shared obs run-document shape.
func TestJSONEnvelope(t *testing.T) {
	dir := writeTempModule(t, `package main

import "math/rand"

func main() { _ = rand.Intn(6) }
`)
	var buf bytes.Buffer
	code, err := run([]string{"-json", "./..."}, dir, &buf)
	if err != nil {
		t.Fatalf("unifvet: %v", err)
	}
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	var doc struct {
		Provenance struct {
			Tool string `json:"tool"`
		} `json:"provenance"`
		Results struct {
			Clean    bool `json:"clean"`
			Findings []struct {
				Analyzer string `json:"analyzer"`
				File     string `json:"file"`
				Line     int    `json:"line"`
				Message  string `json:"message"`
			} `json:"findings"`
		} `json:"results"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("decode run document: %v\n%s", err, buf.String())
	}
	if doc.Provenance.Tool != "unifvet" {
		t.Errorf("provenance.tool = %q, want unifvet", doc.Provenance.Tool)
	}
	if doc.Results.Clean {
		t.Error("clean = true with findings present")
	}
	if len(doc.Results.Findings) == 0 || doc.Results.Findings[0].Analyzer != "detrand" {
		t.Errorf("findings = %+v, want a detrand finding", doc.Results.Findings)
	}
}

// TestAnalyzersFlag lists the suite.
func TestAnalyzersFlag(t *testing.T) {
	var buf bytes.Buffer
	code, err := run([]string{"-analyzers"}, ".", &buf)
	if err != nil || code != 0 {
		t.Fatalf("run: code=%d err=%v", code, err)
	}
	for _, name := range []string{
		"detrand", "wallclock", "maporder", "sharedrng", "obsnil",
		"framecap", "votepure", "lockio", "qlifecycle",
	} {
		if !strings.Contains(buf.String(), name) {
			t.Errorf("analyzer list missing %s:\n%s", name, buf.String())
		}
	}
}

// writeTempModuleFiles lays down a module from a path→contents map.
func writeTempModuleFiles(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module tmpvet\n\ngo 1.22\n"
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const fixObsStub = `package obs

type Journal struct{}

func (j *Journal) Write(e any) {}

type Recorder struct{ Journal *Journal }

func (r *Recorder) Jour() *Journal {
	if r == nil {
		return nil
	}
	return r.Journal
}
`

// TestFixMode golden-tests -fix end to end: an obsnil field read is
// rewritten to the nil-safe accessor, the run exits 0 because every
// finding carried a fix, and a second run is a no-op (idempotent).
func TestFixMode(t *testing.T) {
	dir := writeTempModuleFiles(t, map[string]string{
		"obs/obs.go": fixObsStub,
		"main.go": `package main

import "tmpvet/obs"

func main() {
	rec := &obs.Recorder{}
	rec.Journal.Write("event")
}
`,
	})
	var buf bytes.Buffer
	code, err := run([]string{"-fix", "./..."}, dir, &buf)
	if err != nil {
		t.Fatalf("unifvet -fix: %v", err)
	}
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (all findings fixable); output:\n%s", code, buf.String())
	}
	got, err := os.ReadFile(filepath.Join(dir, "main.go"))
	if err != nil {
		t.Fatal(err)
	}
	golden := `package main

import "tmpvet/obs"

func main() {
	rec := &obs.Recorder{}
	rec.Jour().Write("event")
}
`
	if string(got) != golden {
		t.Fatalf("-fix result:\n%s\nwant:\n%s", got, golden)
	}
	// Idempotency: the fixed tree is clean, so a second -fix changes nothing.
	buf.Reset()
	code, err = run([]string{"-fix", "./..."}, dir, &buf)
	if err != nil || code != 0 {
		t.Fatalf("second -fix: code=%d err=%v\n%s", code, err, buf.String())
	}
	again, _ := os.ReadFile(filepath.Join(dir, "main.go"))
	if string(again) != golden {
		t.Fatalf("-fix is not idempotent:\n%s", again)
	}
}

// TestFixModeUnfixable verifies findings without a suggested fix survive
// -fix and keep the exit code at 1.
func TestFixModeUnfixable(t *testing.T) {
	dir := writeTempModule(t, `package main

import "math/rand"

func main() { _ = rand.Intn(6) }
`)
	var buf bytes.Buffer
	code, err := run([]string{"-fix", "./..."}, dir, &buf)
	if err != nil {
		t.Fatalf("unifvet -fix: %v", err)
	}
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (unfixable finding remains)", code)
	}
	if !strings.Contains(buf.String(), "[detrand]") {
		t.Fatalf("remaining finding not printed:\n%s", buf.String())
	}
}

// TestSARIFFlag verifies -sarif writes a valid SARIF 2.1.0 log with
// repo-relative URIs.
func TestSARIFFlag(t *testing.T) {
	dir := writeTempModule(t, `package main

import "math/rand"

func main() { _ = rand.Intn(6) }
`)
	sarifPath := filepath.Join(t.TempDir(), "unifvet.sarif")
	var buf bytes.Buffer
	code, err := run([]string{"-sarif", sarifPath, "./..."}, dir, &buf)
	if err != nil {
		t.Fatalf("unifvet -sarif: %v", err)
	}
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	data, err := os.ReadFile(sarifPath)
	if err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Results []struct {
				RuleID    string `json:"ruleId"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("invalid SARIF JSON: %v", err)
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if len(log.Runs) != 1 || len(log.Runs[0].Results) == 0 {
		t.Fatalf("want one run with results, got %+v", log)
	}
	r := log.Runs[0].Results[0]
	if r.RuleID != "detrand" {
		t.Errorf("ruleId = %q, want detrand", r.RuleID)
	}
	if uri := r.Locations[0].PhysicalLocation.ArtifactLocation.URI; uri != "main.go" {
		t.Errorf("uri = %q, want module-relative main.go", uri)
	}
}

// TestJSONCounts verifies the run document carries an explicit count per
// analyzer — zero included — so dashboards never have to guess whether a
// missing key means clean or not-run.
func TestJSONCounts(t *testing.T) {
	dir := writeTempModule(t, `package main

import "math/rand"

func main() { _ = rand.Intn(6) }
`)
	var buf bytes.Buffer
	code, err := run([]string{"-json", "./..."}, dir, &buf)
	if err != nil {
		t.Fatalf("unifvet -json: %v", err)
	}
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	var doc struct {
		Results struct {
			Counts map[string]int `json:"counts"`
		} `json:"results"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("decode run document: %v", err)
	}
	want := []string{
		"detrand", "wallclock", "maporder", "sharedrng", "obsnil",
		"framecap", "votepure", "lockio", "qlifecycle", "directive",
	}
	if len(doc.Results.Counts) != len(want) {
		t.Errorf("counts has %d entries, want %d: %v", len(doc.Results.Counts), len(want), doc.Results.Counts)
	}
	for _, name := range want {
		n, ok := doc.Results.Counts[name]
		if !ok {
			t.Errorf("counts missing explicit entry for %s", name)
			continue
		}
		if name == "detrand" && n != 1 {
			t.Errorf("counts[detrand] = %d, want 1", n)
		}
		if name != "detrand" && n != 0 {
			t.Errorf("counts[%s] = %d, want explicit 0", name, n)
		}
	}
}
