// Command unifvet runs the repository's determinism & safety lint suite
// (internal/analysis) over the named packages, in the manner of go vet:
//
//	go run ./cmd/unifvet ./...
//	go run ./cmd/unifvet -json ./... > vet.json
//	go run ./cmd/unifvet -fix ./...
//	go run ./cmd/unifvet -sarif unifvet.sarif ./...
//
// The nine analyzers — detrand, wallclock, maporder, sharedrng, obsnil,
// framecap, votepure, lockio, qlifecycle — enforce the invariants the
// benchmark harness's byte-for-byte reproducibility and the cluster
// runtime's wire-protocol/concurrency contracts rest on; see DESIGN.md
// §3.8 and §3.13. Individual findings are suppressed with
// `//unifvet:allow <analyzer>[,<analyzer>…] <reason>` on the offending
// line or the line above; the reason is mandatory.
//
// -fix applies the suggested fixes analyzers attach to mechanical findings
// (currently obsnil's field-read → accessor rewrite) and reports what it
// changed; findings without a fix are printed and still fail the run. The
// rewrite is idempotent: a second -fix run on the result changes nothing.
//
// -sarif writes the findings as a SARIF 2.1.0 log to the given path ("-"
// for stdout) for GitHub code scanning upload, alongside the normal output.
//
// Exit status: 0 when clean, 1 when any finding (or malformed directive)
// is reported, 2 when packages fail to load. With -json the findings are
// embedded in the shared obs run-document envelope (the same schema
// emitted by unifbench/congestsim/gaptest -json) together with a "counts"
// map carrying an explicit — possibly zero — entry per analyzer, so CI
// tooling parses one format for experiments, benchmarks, and lint results
// alike and can chart per-analyzer trends without guessing at absent keys.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/unifdist/unifdist/internal/analysis"
	"github.com/unifdist/unifdist/internal/obs"
)

func main() {
	code, err := run(os.Args[1:], ".", os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "unifvet:", err)
	}
	os.Exit(code)
}

// run loads the packages matched by the flag-stripped patterns relative to
// dir, applies the analyzer suite, and renders findings to stdout. It
// returns the process exit code.
func run(args []string, dir string, stdout io.Writer) (int, error) {
	fs := flag.NewFlagSet("unifvet", flag.ContinueOnError)
	jsonFlag := fs.Bool("json", false, "emit findings as an obs run-document JSON")
	listFlag := fs.Bool("analyzers", false, "list the analyzer suite and exit")
	fixFlag := fs.Bool("fix", false, "apply suggested fixes to the source tree")
	sarifFlag := fs.String("sarif", "", "write findings as SARIF 2.1.0 to this path (\"-\" for stdout)")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	analyzers := analysis.All()
	if *listFlag {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0, nil
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"."}
	}

	pkgs, err := analysis.Load(dir, patterns)
	if err != nil {
		return 2, err
	}
	diags, err := analysis.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		return 2, err
	}

	if *fixFlag {
		res, err := analysis.ApplyFixes(diags)
		if err != nil {
			return 2, err
		}
		for _, f := range res.Files {
			fmt.Fprintf(stdout, "fixed %s\n", f)
		}
		for _, d := range res.Remaining {
			fmt.Fprintln(stdout, d.String())
		}
		if len(res.Remaining) > 0 {
			return 1, nil
		}
		return 0, nil
	}

	if *sarifFlag != "" {
		root := dir
		if abs, err := filepath.Abs(dir); err == nil {
			root = abs
		}
		sarif, err := analysis.SARIF(diags, analyzers, root)
		if err != nil {
			return 2, err
		}
		sarif = append(sarif, '\n')
		if *sarifFlag == "-" {
			if _, err := stdout.Write(sarif); err != nil {
				return 2, err
			}
		} else if err := os.WriteFile(*sarifFlag, sarif, 0o644); err != nil {
			return 2, err
		}
	}

	if *jsonFlag {
		// counts carries one entry per registered analyzer (plus the
		// "directive" pseudo-analyzer), zero included: dashboards diffing
		// runs must see "framecap: 0", not a missing key.
		counts := map[string]int{"directive": 0}
		for _, a := range analyzers {
			counts[a.Name] = 0
		}
		for _, d := range diags {
			counts[d.Analyzer]++
		}
		doc := obs.Document{
			Provenance: obs.CollectProvenance("unifvet", "", 0, patterns),
			Results: map[string]any{
				"findings": diags,
				"clean":    len(diags) == 0,
				"counts":   counts,
			},
		}
		if err := doc.WriteJSON(stdout); err != nil {
			return 2, err
		}
	} else if *sarifFlag != "-" {
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
		}
	}
	if len(diags) > 0 {
		return 1, nil
	}
	return 0, nil
}
