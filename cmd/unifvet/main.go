// Command unifvet runs the repository's determinism & safety lint suite
// (internal/analysis) over the named packages, in the manner of go vet:
//
//	go run ./cmd/unifvet ./...
//	go run ./cmd/unifvet -json ./... > vet.json
//
// The five analyzers — detrand, wallclock, maporder, sharedrng, obsnil —
// enforce the invariants the benchmark harness's byte-for-byte
// reproducibility rests on; see DESIGN.md §3.8. Individual findings are
// suppressed with `//unifvet:allow <analyzer> <reason>` on the offending
// line or the line above; the reason is mandatory.
//
// Exit status: 0 when clean, 1 when any finding (or malformed directive)
// is reported, 2 when packages fail to load. With -json the findings are
// embedded in the shared obs run-document envelope (the same schema
// emitted by unifbench/congestsim/gaptest -json), so CI tooling parses one
// format for experiments, benchmarks, and lint results alike.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/unifdist/unifdist/internal/analysis"
	"github.com/unifdist/unifdist/internal/obs"
)

func main() {
	code, err := run(os.Args[1:], ".", os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "unifvet:", err)
	}
	os.Exit(code)
}

// run loads the packages matched by the flag-stripped patterns relative to
// dir, applies the analyzer suite, and renders findings to stdout. It
// returns the process exit code.
func run(args []string, dir string, stdout io.Writer) (int, error) {
	fs := flag.NewFlagSet("unifvet", flag.ContinueOnError)
	jsonFlag := fs.Bool("json", false, "emit findings as an obs run-document JSON")
	listFlag := fs.Bool("analyzers", false, "list the analyzer suite and exit")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	analyzers := analysis.All()
	if *listFlag {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0, nil
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"."}
	}

	pkgs, err := analysis.Load(dir, patterns)
	if err != nil {
		return 2, err
	}
	diags, err := analysis.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		return 2, err
	}

	if *jsonFlag {
		doc := obs.Document{
			Provenance: obs.CollectProvenance("unifvet", "", 0, patterns),
			Results: map[string]any{
				"findings": diags,
				"clean":    len(diags) == 0,
			},
		}
		if err := doc.WriteJSON(stdout); err != nil {
			return 2, err
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
		}
	}
	if len(diags) > 0 {
		return 1, nil
	}
	return 0, nil
}
