// Command benchjson converts `go test -bench` text output into the
// repository's machine-readable run-document JSON (the same obs.Document
// envelope emitted by cmd/unifbench -json), so benchmark numbers can be
// recorded and diffed like experiment tables. CI pipes the benchmark smoke
// run through it to produce BENCH_PR2.json.
//
// Usage:
//
//	go test -bench . -benchmem | benchjson [-o bench.json]
//
// Lines that are not benchmark results (headers, PASS/ok trailers) are
// ignored; -benchmem's B/op and allocs/op columns are optional.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"github.com/unifdist/unifdist/internal/obs"
)

// Result is one benchmark line. NsPerOp is wall time per iteration;
// BytesPerOp/AllocsPerOp are present only when -benchmem was set. Extra
// collects custom b.ReportMetric units (e.g. "votes/sec") keyed by unit.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	outFlag := fs.String("o", "", "write the JSON document to this file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	results, err := Parse(stdin)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark results on stdin")
	}

	out := stdout
	if *outFlag != "" {
		f, err := os.Create(*outFlag)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	doc := obs.Document{
		Provenance: obs.CollectProvenance("benchjson", "", 0, fs.Args()),
		Results:    map[string]any{"benchmarks": results},
	}
	return doc.WriteJSON(out)
}

// Parse extracts benchmark result lines from go test -bench output. The
// trailing -N GOMAXPROCS suffix is stripped from names; duplicate names
// (e.g. -count > 1) keep the last occurrence.
func Parse(r io.Reader) ([]Result, error) {
	byName := map[string]Result{}
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		res, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		if _, seen := byName[res.Name]; !seen {
			order = append(order, res.Name)
		}
		byName[res.Name] = res
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Strings(order)
	out := make([]Result, 0, len(order))
	for _, name := range order {
		out = append(out, byName[name])
	}
	return out, nil
}

func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil || iters < 0 {
		return Result{}, false
	}
	res := Result{Name: name, Iterations: iters}
	havePrimary := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		// Reject non-finite values: go test never emits them, and NaN/Inf
		// cannot be encoded into the JSON run document.
		if err != nil || math.IsNaN(val) || math.IsInf(val, 0) {
			return Result{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			res.NsPerOp = val
			havePrimary = true
		case "B/op":
			v := val
			res.BytesPerOp = &v
		case "allocs/op":
			v := val
			res.AllocsPerOp = &v
		default:
			// Custom b.ReportMetric units ride along keyed by unit name.
			if res.Extra == nil {
				res.Extra = map[string]float64{}
			}
			res.Extra[fields[i+1]] = val
		}
	}
	if !havePrimary {
		return Result{}, false
	}
	return res, true
}
