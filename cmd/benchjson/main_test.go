package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: github.com/unifdist/unifdist
cpu: some CPU
BenchmarkSampleIntoUniform-8     	  250000	      4521 ns/op	       0 B/op	       0 allocs/op
BenchmarkHasCollisionScratch-8   	 1200000	       991 ns/op
BenchmarkNetworkRun              	    2000	    612345 ns/op	      16 B/op	       2 allocs/op
PASS
ok  	github.com/unifdist/unifdist	12.3s
`

func TestParse(t *testing.T) {
	results, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3: %+v", len(results), results)
	}
	byName := map[string]Result{}
	for _, r := range results {
		byName[r.Name] = r
	}
	u, ok := byName["BenchmarkSampleIntoUniform"]
	if !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped: %+v", results)
	}
	if u.NsPerOp != 4521 || u.Iterations != 250000 {
		t.Errorf("uniform = %+v", u)
	}
	if u.AllocsPerOp == nil || *u.AllocsPerOp != 0 {
		t.Errorf("uniform allocs = %v, want 0", u.AllocsPerOp)
	}
	h := byName["BenchmarkHasCollisionScratch"]
	if h.BytesPerOp != nil || h.AllocsPerOp != nil {
		t.Errorf("no -benchmem columns yet fields set: %+v", h)
	}
	n := byName["BenchmarkNetworkRun"]
	if n.NsPerOp != 612345 || n.AllocsPerOp == nil || *n.AllocsPerOp != 2 {
		t.Errorf("network run = %+v", n)
	}
}

func TestParseIgnoresGarbage(t *testing.T) {
	results, err := Parse(strings.NewReader("hello\nBenchmarkBad abc def\n\nok\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Fatalf("parsed %d results from garbage", len(results))
	}
}

func TestRunEmitsDocument(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, strings.NewReader(sampleOutput), &out); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Provenance struct {
			Tool string `json:"tool"`
		} `json:"provenance"`
		Results struct {
			Benchmarks []Result `json:"benchmarks"`
		} `json:"results"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if doc.Provenance.Tool != "benchjson" {
		t.Errorf("tool = %q", doc.Provenance.Tool)
	}
	if len(doc.Results.Benchmarks) != 3 {
		t.Errorf("document holds %d benchmarks, want 3", len(doc.Results.Benchmarks))
	}
}

func TestRunEmptyInputFails(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, strings.NewReader("PASS\n"), &out); err == nil {
		t.Fatal("empty input did not error")
	}
}

func TestParseCustomMetrics(t *testing.T) {
	line := "BenchmarkRefereePipe/batch128-8   \t       3\t 369935384 ns/op\t   3460090 votes/sec\t57949424 B/op\t  299995 allocs/op\n"
	results, err := Parse(strings.NewReader(line))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("parsed %d results, want 1", len(results))
	}
	r := results[0]
	if r.Name != "BenchmarkRefereePipe/batch128" || r.NsPerOp != 369935384 {
		t.Fatalf("result = %+v", r)
	}
	if got := r.Extra["votes/sec"]; got != 3460090 {
		t.Fatalf("votes/sec = %v, want 3460090", got)
	}
	if r.BytesPerOp == nil || *r.BytesPerOp != 57949424 {
		t.Fatalf("B/op lost next to a custom metric: %+v", r)
	}
	// Custom metrics survive the JSON round trip.
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"votes/sec":3460090`) {
		t.Fatalf("extra metric missing from JSON: %s", buf.String())
	}
}
