package main

import (
	"math"
	"sort"
	"strings"
	"testing"
)

// FuzzBenchjsonParse asserts Parse never panics on arbitrary input — CI
// pipes raw `go test -bench` output through benchjson, so a malformed line
// must degrade to "ignored", never to a crash — and that whatever it does
// return upholds the documented invariants: names are non-empty
// Benchmark-prefixed and sorted, names are unique, and iteration counts
// are the parsed integers (non-negative).
func FuzzBenchjsonParse(f *testing.F) {
	f.Add("BenchmarkFoo-8   \t1000\t1234 ns/op\t56 B/op\t7 allocs/op")
	f.Add("BenchmarkBar 1 0.5 ns/op\ngoos: linux\nPASS\nok  pkg 1.2s")
	f.Add("BenchmarkDup 1 1 ns/op\nBenchmarkDup 2 2 ns/op")
	f.Add("Benchmark 1 1 ns/op")
	f.Add("BenchmarkHuge 9223372036854775807 1e300 ns/op")
	f.Add("BenchmarkNaN 5 NaN ns/op\nBenchmarkNeg -1 1 ns/op")
	f.Add("\x00\xff�")
	f.Add(strings.Repeat("BenchmarkLong", 1<<10) + " 1 1 ns/op")
	f.Fuzz(func(t *testing.T, input string) {
		results, err := Parse(strings.NewReader(input))
		if err != nil {
			// Only scanner errors (e.g. a single line beyond the buffer cap)
			// are allowed; a nil slice must accompany them.
			if results != nil {
				t.Fatalf("Parse returned results alongside error %v", err)
			}
			return
		}
		names := make([]string, 0, len(results))
		seen := map[string]bool{}
		for _, r := range results {
			if !strings.HasPrefix(r.Name, "Benchmark") {
				t.Fatalf("result name %q lacks Benchmark prefix", r.Name)
			}
			if seen[r.Name] {
				t.Fatalf("duplicate name %q in results", r.Name)
			}
			seen[r.Name] = true
			names = append(names, r.Name)
			if r.Iterations < 0 {
				t.Fatalf("negative iterations %d for %q", r.Iterations, r.Name)
			}
			if math.IsNaN(r.NsPerOp) || math.IsInf(r.NsPerOp, 0) {
				t.Fatalf("non-finite ns/op %v for %q cannot encode to JSON", r.NsPerOp, r.Name)
			}
		}
		if !sort.StringsAreSorted(names) {
			t.Fatalf("result names not sorted: %v", names)
		}
	})
}
