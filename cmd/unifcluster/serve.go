// serve and submit: the multi-tenant subcommands. `unifcluster serve`
// runs the long-lived session service — one listener multiplexing many
// concurrent testing sessions over isolated referees — and `unifcluster
// submit` runs one client session against it: open (admission), k node
// clients, wait for the report. Everything the legacy single-run mode
// prints and emits (text summary, -json run document) is available per
// submitted session.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/unifdist/unifdist/internal/cluster"
	"github.com/unifdist/unifdist/internal/cluster/service"
	"github.com/unifdist/unifdist/internal/dist"
	"github.com/unifdist/unifdist/internal/obs"
	"github.com/unifdist/unifdist/internal/obs/export"
)

// serveReady is called with the bound service address once it is
// listening; tests override it to discover a ":0" port.
var serveReady = func(string) {}

// serveStop, when non-nil, stops a serve command when closed; tests use
// it in place of an interrupt signal.
var serveStop chan struct{}

// runServe runs the session service until an interrupt or SIGTERM.
func runServe(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("unifcluster serve", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", "127.0.0.1:4600", "listen address for session and node connections")
		maxSess   = fs.Int("max-sessions", service.DefaultMaxSessions, "concurrent-session quota (also bounds /metrics label cardinality)")
		budget    = fs.Int("tenant-budget", 0, "per-tenant in-flight vote budget, as sum of k×trials (0 = unlimited)")
		maxK      = fs.Int("max-k", 0, "largest admissible network size per session (0 = unlimited)")
		maxTrials = fs.Int("max-trials", 0, "largest admissible trial count per session (0 = wire report cap)")
		deadline  = fs.Duration("deadline", cluster.DefaultDeadline, "per-session deadline; stalled sessions are evicted past it")
		reap      = fs.Duration("reap", service.DefaultReapInterval, "stalled-session sweep interval")
		workers   = fs.Int("workers", service.DefaultWorkers, "frame-fold worker pool size")
		quantum   = fs.Int("quantum", service.DefaultQuantum, "frames one worker folds per session turn (fairness granularity)")
		queue     = fs.Int("queue", service.DefaultQueueDepth, "per-session inbound frame queue depth")
		jrnlDir   = fs.String("journal-dir", "", "write one per-session JSONL journal into this directory")
		obsAddr   = fs.String("obs-addr", "", "serve live /metrics, /healthz and pprof on this address")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *jrnlDir != "" {
		if err := os.MkdirAll(*jrnlDir, 0o755); err != nil {
			return fmt.Errorf("serve: journal dir: %w", err)
		}
	}

	reg := obs.NewRegistry()
	svc := service.New(service.Config{
		MaxSessions:  *maxSess,
		TenantBudget: *budget,
		MaxK:         *maxK,
		MaxTrials:    *maxTrials,
		Deadline:     *deadline,
		ReapInterval: *reap,
		Workers:      *workers,
		Quantum:      *quantum,
		QueueDepth:   *queue,
		Obs:          reg,
		JournalDir:   *jrnlDir,
	})
	if *obsAddr != "" {
		srv := export.New(reg, export.WithRate("svc.sessions_opened"))
		bound, err := srv.Start(*obsAddr)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "unifcluster serve: obs server listening on http://%s\n", bound)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("serve: listen %s: %w", *addr, err)
	}
	fmt.Fprintf(os.Stderr, "unifcluster serve: session service listening on %s\n", l.Addr())
	serveReady(l.Addr().String())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	done := make(chan error, 1)
	go func() { done <- svc.Serve(l) }()
	select {
	case err := <-done:
		svc.Close()
		return err
	case <-sig:
	case <-serveStop:
	}
	printf(stdout, "serve: shutting down, %g sessions active\n", reg.Gauge("svc.sessions_active").Value())
	return svc.Close()
}

// runSubmit runs one client session against a running service.
func runSubmit(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("unifcluster submit", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", "127.0.0.1:4600", "session service address")
		tenant    = fs.Uint("tenant", 1, "tenant ID for quota accounting")
		useDflt   = fs.Bool("default", false, "register as the default session for legacy sessionless peers")
		ruleName  = fs.String("rule", "threshold", "decision rule: threshold (Thm 1.2) or and (Thm 1.1)")
		k         = fs.Int("k", 60, "number of node clients")
		n         = fs.Int("n", 64, "domain size")
		eps       = fs.Float64("eps", 1.0, "L1 distance parameter")
		distName  = fs.String("dist", "uniform", "uniform, twobump, zipf or halfsupport")
		trials    = fs.Int("trials", 10, "Monte-Carlo trials for this session")
		seed      = fs.Uint64("seed", 1, "base seed of the indexed sample streams")
		sketch    = fs.Bool("sketch", false, "nodes submit raw collision sketches (threshold rule only)")
		early     = fs.Bool("early", false, "let the service close the session as soon as every verdict is fixed")
		drop      = fs.Float64("drop", 0, "per-vote drop probability")
		dup       = fs.Float64("dup", 0, "per-vote duplication probability")
		disc      = fs.Float64("disconnect", 0, "per-vote hard-disconnect probability")
		delay     = fs.Duration("delay", 0, "max per-vote injected delay")
		faultSeed = fs.Uint64("fault-seed", 1, "seed of the fault plan's link streams")
		retries   = fs.Int("retries", 0, "node redial attempts after transport errors")
		backoff   = fs.Duration("backoff", 5*time.Millisecond, "initial retry backoff (doubles per attempt)")
		batch     = fs.Int("batch", 0, "coalesce up to this many votes per VoteBatch frame (0 = one frame per vote)")
		compress  = fs.Bool("compress", false, "compress batch frames when that saves wire bytes (requires -batch)")
		jsonFlag  = fs.Bool("json", false, "emit a machine-readable run document instead of text")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	nw, params, err := buildNetwork(*ruleName, *n, *k, *eps)
	if err != nil {
		return err
	}
	if *sketch && *ruleName != "threshold" {
		return fmt.Errorf("-sketch is only valid for the threshold rule (single-collision testers)")
	}
	d, err := buildDistribution(*distName, *n, *eps, *seed)
	if err != nil {
		return err
	}
	if *compress && *batch < 2 {
		return fmt.Errorf("-compress requires -batch ≥ 2 (only batch frames are compressed)")
	}
	cfg := cluster.Config{
		Trials:     *trials,
		BaseSeed:   *seed,
		EarlyClose: *early,
		Sketch:     *sketch,
		DomainN:    *n,
		Retries:    *retries,
		Backoff:    *backoff,
		Batch:      *batch,
		Compress:   *compress,
	}
	var plan *cluster.FaultPlan
	if *drop > 0 || *dup > 0 || *disc > 0 || *delay > 0 {
		plan = &cluster.FaultPlan{Seed: *faultSeed, Drop: *drop, Dup: *dup, Disconnect: *disc, Delay: *delay}
	}

	out := stdout
	if *jsonFlag {
		out = nil
	}
	dial := func() (net.Conn, error) { return net.Dial("tcp", *addr) }
	printf(out, "submit: rule=%s k=%d n=%d trials=%d service=%s tenant=%d\n",
		nw.Rule().Name(), nw.K(), *n, *trials, *addr, *tenant)
	prov := obs.CollectProvenance("unifcluster submit", "tcp", *seed, args)
	start := time.Now()
	rep, err := service.Submit(dial, cfg, nw, d, plan, uint32(*tenant), *useDflt)
	if err != nil {
		return err
	}
	prov.WallMS = float64(time.Since(start).Microseconds()) / 1e3

	printf(out, "verdict: %d/%d trials accept (missing votes: %d, quorum trials: %d)\n",
		rep.Accepts, rep.Trials, rep.MissingVotes, rep.QuorumTrials)
	if *jsonFlag {
		doc := obs.Document{
			Provenance: prov,
			Results: map[string]any{
				"rule":   nw.Rule().Name(),
				"params": params,
				"report": rep,
				"input":  map[string]any{"dist": d.Name(), "n": *n, "l1_from_uniform": dist.L1FromUniform(d)},
				"faults": plan,
				"tenant": *tenant,
				"sketch": *sketch,
			},
		}
		return doc.WriteJSON(stdout)
	}
	return nil
}
