package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"github.com/unifdist/unifdist/internal/cluster"
)

// startServe runs `unifcluster serve` in the background on a free port and
// returns its address; cleanup stops it and verifies a clean exit.
func startServe(t *testing.T, extra ...string) string {
	t.Helper()
	addrCh := make(chan string, 1)
	oldReady, oldStop := serveReady, serveStop
	serveReady = func(a string) { addrCh <- a }
	serveStop = make(chan struct{})
	stop := serveStop
	done := make(chan error, 1)
	go func() {
		done <- run(append([]string{"serve", "-addr", "127.0.0.1:0"}, extra...), io.Discard)
	}()
	addr := <-addrCh
	t.Cleanup(func() {
		close(stop)
		if err := <-done; err != nil {
			t.Errorf("serve exited with error: %v", err)
		}
		serveReady, serveStop = oldReady, oldStop
	})
	return addr
}

// submitJSON runs `unifcluster submit -json` and returns the parsed report.
func submitJSON(t *testing.T, args []string) (*cluster.Report, error) {
	t.Helper()
	var buf bytes.Buffer
	if err := run(append([]string{"submit", "-json"}, args...), &buf); err != nil {
		return nil, err
	}
	var doc struct {
		Results struct {
			Report *cluster.Report `json:"report"`
		} `json:"results"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		return nil, fmt.Errorf("submit document not parseable: %v\n%s", err, buf.String())
	}
	if doc.Results.Report == nil {
		return nil, fmt.Errorf("submit document has no report:\n%s", buf.String())
	}
	return doc.Results.Report, nil
}

// TestServeSubmitMultiTenantSmoke is the CI multi-tenant smoke: eight
// overlapping TCP sessions — mixed rules, seeds, batching and seeded
// faults — against one `unifcluster serve`, each byte-identical (sans
// transport stats) to its solo run, with zero cross-session dedup
// collisions.
func TestServeSubmitMultiTenantSmoke(t *testing.T) {
	dir := t.TempDir()
	addr := startServe(t, "-max-sessions", "8", "-journal-dir", dir)

	type tcase struct {
		name string
		args []string // submit args beyond -addr/-tenant
		cfg  cluster.Config
		rule string
		kk   int
		nn   int
		dst  string
		plan *cluster.FaultPlan
	}
	cases := []tcase{
		{name: "thr-1", args: []string{"-k", "40", "-n", "64", "-trials", "6", "-seed", "1", "-dist", "twobump"},
			cfg: cluster.Config{Trials: 6, BaseSeed: 1}, rule: "threshold", kk: 40, nn: 64, dst: "twobump"},
		{name: "thr-2", args: []string{"-k", "40", "-n", "64", "-trials", "6", "-seed", "9", "-dist", "twobump", "-batch", "16"},
			cfg: cluster.Config{Trials: 6, BaseSeed: 9, Batch: 16}, rule: "threshold", kk: 40, nn: 64, dst: "twobump"},
		{name: "and-1", args: []string{"-rule", "and", "-k", "16", "-n", "1024", "-trials", "5", "-seed", "3", "-dist", "twobump"},
			cfg: cluster.Config{Trials: 5, BaseSeed: 3}, rule: "and", kk: 16, nn: 1024, dst: "twobump"},
		{name: "and-2", args: []string{"-rule", "and", "-k", "16", "-n", "1024", "-trials", "5", "-seed", "8"},
			cfg: cluster.Config{Trials: 5, BaseSeed: 8}, rule: "and", kk: 16, nn: 1024, dst: "uniform"},
		{name: "thr-drop", args: []string{"-k", "40", "-n", "64", "-trials", "6", "-seed", "5", "-dist", "twobump", "-drop", "0.1", "-fault-seed", "7"},
			cfg: cluster.Config{Trials: 6, BaseSeed: 5}, rule: "threshold", kk: 40, nn: 64, dst: "twobump",
			plan: &cluster.FaultPlan{Seed: 7, Drop: 0.1}},
		{name: "thr-drop-batch", args: []string{"-k", "40", "-n", "64", "-trials", "6", "-seed", "5", "-dist", "twobump", "-drop", "0.1", "-dup", "0.1", "-fault-seed", "11", "-batch", "8"},
			cfg: cluster.Config{Trials: 6, BaseSeed: 5, Batch: 8}, rule: "threshold", kk: 40, nn: 64, dst: "twobump",
			plan: &cluster.FaultPlan{Seed: 11, Drop: 0.1, Dup: 0.1}},
		{name: "thr-sketch", args: []string{"-k", "40", "-n", "64", "-trials", "6", "-seed", "13", "-dist", "twobump", "-sketch"},
			cfg: cluster.Config{Trials: 6, BaseSeed: 13, Sketch: true, DomainN: 64}, rule: "threshold", kk: 40, nn: 64, dst: "twobump"},
		{name: "thr-3", args: []string{"-k", "40", "-n", "64", "-trials", "6", "-seed", "21", "-dist", "twobump", "-batch", "32", "-compress"},
			cfg: cluster.Config{Trials: 6, BaseSeed: 21, Batch: 32, Compress: true}, rule: "threshold", kk: 40, nn: 64, dst: "twobump"},
	}

	reports := make([]*cluster.Report, len(cases))
	errs := make([]error, len(cases))
	var wg sync.WaitGroup
	wg.Add(len(cases))
	for i, c := range cases {
		go func(i int, c tcase) {
			defer wg.Done()
			args := append([]string{"-addr", addr, "-tenant", fmt.Sprint(i + 1)}, c.args...)
			reports[i], errs[i] = submitJSON(t, args)
		}(i, c)
	}
	wg.Wait()

	for i, c := range cases {
		if errs[i] != nil {
			t.Fatalf("%s: %v", c.name, errs[i])
		}
		nw, _, err := buildNetwork(c.rule, c.nn, c.kk, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		d, err := buildDistribution(c.dst, c.nn, 1.0, c.cfg.BaseSeed)
		if err != nil {
			t.Fatal(err)
		}
		want, err := cluster.RunPipe(c.cfg, nw, d, c.plan)
		if err != nil {
			t.Fatalf("%s: solo run: %v", c.name, err)
		}
		got, ref := *reports[i], *want
		got.Stats, ref.Stats = cluster.RefereeStats{}, cluster.RefereeStats{}
		got.EarlyTrials, ref.EarlyTrials = 0, 0
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("%s: submitted session diverged from solo run:\n got %+v\nwant %+v", c.name, got, ref)
		}
	}

	// Every session journaled independently.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(cases) {
		t.Errorf("journal dir has %d files, want %d", len(entries), len(cases))
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		kinds := map[string]int{}
		for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
			var ev struct {
				Kind string `json:"kind"`
			}
			if err := json.Unmarshal([]byte(line), &ev); err != nil {
				t.Fatalf("%s: bad journal line %q: %v", e.Name(), line, err)
			}
			kinds[ev.Kind]++
		}
		if kinds["session_open"] != 1 || kinds["session_end"] != 1 || kinds["cluster_trial"] == 0 {
			t.Errorf("%s: journal kinds = %v", e.Name(), kinds)
		}
	}
}

// TestSubmitRejectedSurfacesReason pins the CLI error path for a quota
// rejection.
func TestSubmitRejectedSurfacesReason(t *testing.T) {
	addr := startServe(t, "-max-k", "4")
	_, err := submitJSON(t, []string{"-addr", addr, "-k", "40", "-n", "64", "-trials", "4"})
	if err == nil || !strings.Contains(err.Error(), "shape") {
		t.Fatalf("oversized submit: %v, want a shape rejection", err)
	}
}
