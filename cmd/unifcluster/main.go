// Command unifcluster runs one 0-round uniformity-testing session as a
// real cluster: a referee service plus k in-process node clients speaking
// the length-prefixed wire protocol over net.Pipe or TCP loopback, with
// optional seeded transport faults.
//
// Usage:
//
//	unifcluster [-rule threshold|and] [-k 60] [-n 64] [-eps 1.0]
//	            [-dist uniform|twobump|zipf|halfsupport] [-trials 10]
//	            [-seed 1] [-transport pipe|tcp] [-policy observed|strict]
//	            [-early] [-sketch] [-drop 0] [-dup 0] [-disconnect 0]
//	            [-delay 0] [-fault-seed 1] [-retries 0] [-backoff 5ms]
//	            [-deadline 10s] [-batch 0] [-compress] [-flush-bytes 8192]
//	            [-queue 16] [-queue-policy block|drop]
//	            [-agg 0] [-agg-depth 1]
//	            [-json] [-journal run.jsonl] [-obs-addr :9090]
//
//	unifcluster serve  [-addr 127.0.0.1:4600] [-max-sessions 16]
//	                   [-tenant-budget 0] [-max-k 0] [-max-trials 0]
//	                   [-deadline 10s] [-reap 250ms] [-workers 4]
//	                   [-quantum 32] [-queue 64] [-journal-dir DIR]
//	                   [-obs-addr :9090]
//	unifcluster submit [-addr 127.0.0.1:4600] [-tenant 1] [-default]
//	                   [run flags: -rule -k -n -eps -dist -trials -seed
//	                   -sketch -early -batch -compress -drop -dup
//	                   -disconnect -delay -fault-seed -retries -backoff
//	                   -json]
//
// serve runs the long-lived multi-tenant session service: one listener
// multiplexing many concurrent testing sessions, each admitted via wire
// v5 SessionOpen with per-tenant quotas, folded by an isolated referee,
// and answered with a SessionReport. submit is the client side: it opens
// a session, runs k node clients against the service, and prints (or
// emits as -json) the same report the legacy single-run mode produces.
//
// -batch enables the high-throughput transport: votes coalesce into
// VoteBatch frames behind a bounded per-connection send queue, -compress
// additionally compresses batch frames when that saves wire bytes, and
// the flush/queue flags tune the coalescing watermarks and backpressure
// policy. None of these change any verdict — batched runs are
// trial-for-trial identical to unbatched ones.
//
// -agg shards the referee behind a hierarchical aggregation tree: the
// node-ID space splits into contiguous windows of at most -agg children
// per parent across -agg-depth aggregator tiers, each aggregator folds
// its window's votes into per-trial partial sums and forwards them
// upstream as PartialVerdict frames, and the root referee merges the
// sums. Like batching, the topology reshapes the wire traffic, never the
// verdicts: tree runs are trial-for-trial identical to the flat star.
//
// -json replaces the human-readable summary with the machine-readable run
// document every other command emits (provenance + results + metrics);
// -journal streams per-trial verdict events — and, with it, the telemetry
// plane's linked span records — as JSON Lines; -obs-addr serves live
// /metrics, /healthz, /runz and pprof over HTTP for the duration of the
// run (the bound address is printed to stderr, so ":0" works).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sync/atomic"
	"time"

	"github.com/unifdist/unifdist/internal/cluster"
	"github.com/unifdist/unifdist/internal/dist"
	"github.com/unifdist/unifdist/internal/obs"
	"github.com/unifdist/unifdist/internal/obs/export"
	"github.com/unifdist/unifdist/internal/obs/trace"
	"github.com/unifdist/unifdist/internal/zeroround"
)

// obsReady is called with the bound obs-server address once it is
// listening; tests override it to discover a ":0" port.
var obsReady = func(string) {}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "unifcluster:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	// Subcommands first; a leading flag (or nothing) selects the legacy
	// single-run mode, unchanged.
	if len(args) > 0 {
		switch args[0] {
		case "serve":
			return runServe(args[1:], stdout)
		case "submit":
			return runSubmit(args[1:], stdout)
		}
	}
	fs := flag.NewFlagSet("unifcluster", flag.ContinueOnError)
	var (
		ruleName  = fs.String("rule", "threshold", "decision rule: threshold (Thm 1.2) or and (Thm 1.1)")
		k         = fs.Int("k", 60, "number of node clients")
		n         = fs.Int("n", 64, "domain size")
		eps       = fs.Float64("eps", 1.0, "L1 distance parameter")
		distName  = fs.String("dist", "uniform", "uniform, twobump, zipf or halfsupport")
		trials    = fs.Int("trials", 10, "Monte-Carlo trials per session")
		seed      = fs.Uint64("seed", 1, "base seed of the indexed sample streams")
		transport = fs.String("transport", "pipe", "pipe (in-memory) or tcp (loopback)")
		policy    = fs.String("policy", "observed", "missing-vote policy: observed or strict")
		early     = fs.Bool("early", false, "close the session as soon as every verdict is fixed")
		sketch    = fs.Bool("sketch", false, "nodes submit raw collision sketches (threshold rule only)")
		drop      = fs.Float64("drop", 0, "per-vote drop probability")
		dup       = fs.Float64("dup", 0, "per-vote duplication probability")
		disc      = fs.Float64("disconnect", 0, "per-vote hard-disconnect probability")
		delay     = fs.Duration("delay", 0, "max per-vote injected delay")
		faultSeed = fs.Uint64("fault-seed", 1, "seed of the fault plan's link streams")
		retries   = fs.Int("retries", 0, "node redial attempts after transport errors")
		backoff   = fs.Duration("backoff", 5*time.Millisecond, "initial retry backoff (doubles per attempt)")
		deadline  = fs.Duration("deadline", cluster.DefaultDeadline, "session safety-net deadline")
		batch     = fs.Int("batch", 0, "coalesce up to this many votes per VoteBatch frame (0 = one frame per vote)")
		compress  = fs.Bool("compress", false, "compress batch frames when it saves wire bytes (requires -batch)")
		flushB    = fs.Int("flush-bytes", 0, "flush a pending batch at this encoded size (default 8KiB)")
		queueLen  = fs.Int("queue", 0, "bounded send-queue depth per node connection (default 16)")
		queuePol  = fs.String("queue-policy", "block", "full-queue policy: block (backpressure) or drop (shed load)")
		aggFanout = fs.Int("agg", 0, "shard the referee behind an aggregator tree of this fanout (0 = flat star, ≥ 2 = tree)")
		aggDepth  = fs.Int("agg-depth", 1, "aggregator tiers between the leaves and the root (requires -agg)")
		jsonFlag  = fs.Bool("json", false, "emit a machine-readable run document instead of text")
		jrnlFlag  = fs.String("journal", "", "write per-trial events and trace spans to this JSONL file")
		obsAddr   = fs.String("obs-addr", "", "serve live /metrics, /healthz, /runz and pprof on this address (e.g. :9090 or 127.0.0.1:0)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	nw, params, err := buildNetwork(*ruleName, *n, *k, *eps)
	if err != nil {
		return err
	}
	if *sketch && *ruleName != "threshold" {
		return fmt.Errorf("-sketch is only valid for the threshold rule (single-collision testers)")
	}
	d, err := buildDistribution(*distName, *n, *eps, *seed)
	if err != nil {
		return err
	}

	var pol cluster.QuorumPolicy
	switch *policy {
	case "observed":
		pol = cluster.QuorumObserved
	case "strict":
		pol = cluster.QuorumStrict
	default:
		return fmt.Errorf("unknown policy %q", *policy)
	}

	if *compress && *batch < 2 {
		return fmt.Errorf("-compress requires -batch ≥ 2 (only batch frames are compressed)")
	}
	if *aggFanout == 1 || *aggFanout < 0 {
		return fmt.Errorf("-agg must be 0 (flat star) or an aggregator fanout ≥ 2, got %d", *aggFanout)
	}
	if *aggDepth < 1 {
		return fmt.Errorf("-agg-depth must be ≥ 1, got %d", *aggDepth)
	}
	var qp cluster.QueuePolicy
	switch *queuePol {
	case "block":
		qp = cluster.QueueBlock
	case "drop":
		qp = cluster.QueueDrop
	default:
		return fmt.Errorf("unknown queue policy %q", *queuePol)
	}

	cfg := cluster.Config{
		Trials:      *trials,
		BaseSeed:    *seed,
		Policy:      pol,
		EarlyClose:  *early,
		Sketch:      *sketch,
		DomainN:     *n,
		Deadline:    *deadline,
		Retries:     *retries,
		Backoff:     *backoff,
		Batch:       *batch,
		Compress:    *compress,
		FlushBytes:  *flushB,
		QueueDepth:  *queueLen,
		QueuePolicy: qp,
	}
	var plan *cluster.FaultPlan
	if *drop > 0 || *dup > 0 || *disc > 0 || *delay > 0 {
		plan = &cluster.FaultPlan{Seed: *faultSeed, Drop: *drop, Dup: *dup, Disconnect: *disc, Delay: *delay}
	}

	out := stdout
	var reg *obs.Registry
	if *jsonFlag {
		out = nil
		reg = obs.NewRegistry()
		cfg.Obs = reg
	}
	prov := obs.CollectProvenance("unifcluster", *transport, *seed, args)
	if *batch >= 2 {
		// The transport shape changes the wire traffic, never the verdicts;
		// record it so the run document explains its own byte counts.
		prov.Extra = map[string]string{
			"batch":        fmt.Sprint(*batch),
			"compress":     fmt.Sprint(*compress),
			"queue_policy": qp.String(),
		}
		if *flushB > 0 {
			prov.Extra["flush_bytes"] = fmt.Sprint(*flushB)
		}
		if *queueLen > 0 {
			prov.Extra["queue_depth"] = fmt.Sprint(*queueLen)
		}
	}
	if *aggFanout >= 2 {
		// Like batching, the tree topology reshapes the wire traffic — the
		// root folds PartialVerdict sums instead of raw votes — but never
		// the verdicts.
		if prov.Extra == nil {
			prov.Extra = map[string]string{}
		}
		prov.Extra["agg_fanout"] = fmt.Sprint(*aggFanout)
		prov.Extra["agg_depth"] = fmt.Sprint(*aggDepth)
	}
	var journal *obs.Journal
	if *jrnlFlag != "" {
		journal, err = obs.OpenJournal(*jrnlFlag)
		if err != nil {
			return err
		}
		defer journal.Close()
		if cfg.Obs == nil {
			cfg.Obs = obs.NewRegistry()
			reg = cfg.Obs
		}
		journal.Write(struct {
			Kind       string         `json:"kind"`
			Provenance obs.Provenance `json:"provenance"`
		}{Kind: "run_start", Provenance: prov})
		// A journaled run is also a traced run: every vote frame carries
		// wire trace context, and the journal collects the linked spans
		// (node sample → send → referee apply → verdict).
		cfg.Trace = trace.New(journal, trace.Derive("unifcluster", *seed))
	}

	// liveRep publishes the finished report to the /runz handler.
	var liveRep atomic.Pointer[cluster.Report]
	if *obsAddr != "" {
		if reg == nil {
			reg = obs.NewRegistry()
			cfg.Obs = reg
		}
		// Copy the provenance by value: the run goroutine fills in WallMS
		// after the run while /runz handlers may be reading.
		provCopy := prov
		obsReg := reg
		srv := export.New(reg,
			export.WithRate("cluster.votes"),
			export.WithRunz(func() any {
				doc := map[string]any{
					"provenance": provCopy,
					"running":    liveRep.Load() == nil,
					"metrics":    obsReg.Snapshot(),
				}
				if rep := liveRep.Load(); rep != nil {
					doc["report"] = rep
				}
				return doc
			}))
		bound, err := srv.Start(*obsAddr)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "unifcluster: obs server listening on http://%s\n", bound)
		obsReady(bound)
	}

	printf(out, "cluster: rule=%s k=%d n=%d trials=%d transport=%s policy=%s\n",
		nw.Rule().Name(), nw.K(), *n, *trials, *transport, pol)
	if *aggFanout >= 2 {
		printf(out, "topology: aggregation tree, fanout=%d depth=%d\n", *aggFanout, *aggDepth)
	}
	printf(out, "input: %s (true distance from uniform: %.4g)\n", d.Name(), dist.L1FromUniform(d))
	if plan != nil {
		printf(out, "faults: drop=%.3g dup=%.3g disconnect=%.3g delay=%s seed=%d\n",
			plan.Drop, plan.Dup, plan.Disconnect, plan.Delay, plan.Seed)
	}

	start := time.Now()
	var rep *cluster.Report
	var runErr error
	switch {
	case *transport == "pipe" && *aggFanout >= 2:
		rep, runErr = cluster.RunTreePipe(cfg, nw, d, plan, *aggFanout, *aggDepth)
	case *transport == "tcp" && *aggFanout >= 2:
		rep, runErr = cluster.RunTreeTCP(cfg, nw, d, plan, *aggFanout, *aggDepth)
	case *transport == "pipe":
		rep, runErr = cluster.RunPipe(cfg, nw, d, plan)
	case *transport == "tcp":
		rep, runErr = cluster.RunTCP(cfg, nw, d, plan)
	default:
		return fmt.Errorf("unknown transport %q", *transport)
	}
	prov.WallMS = float64(time.Since(start).Microseconds()) / 1e3
	liveRep.Store(rep)

	// Flush the journal before surfacing any run error: a strict-quorum
	// failure (or an EarlyDecider short-circuit severing node connections)
	// still carries a fully decided report, and returning first would
	// truncate the journal after run_start — losing every trial line.
	if journal != nil && rep != nil {
		for t := 0; t < rep.Trials; t++ {
			journal.Write(struct {
				Kind    string `json:"kind"`
				Trial   int    `json:"trial"`
				Accept  bool   `json:"accept"`
				Rejects int    `json:"rejects"`
				Votes   int    `json:"votes"`
				Missing int    `json:"missing"`
			}{Kind: "cluster_trial", Trial: t, Accept: rep.Verdicts[t], Rejects: rep.Rejects[t], Votes: rep.Votes[t], Missing: rep.Missing[t]})
		}
		end := struct {
			Kind   string  `json:"kind"`
			WallMS float64 `json:"wall_ms"`
			Error  string  `json:"error,omitempty"`
		}{Kind: "run_end", WallMS: prov.WallMS}
		if runErr != nil {
			end.Error = runErr.Error()
		}
		journal.Write(end)
		if jerr := journal.Err(); jerr != nil && runErr == nil {
			runErr = jerr
		}
	}
	if runErr != nil {
		return runErr
	}

	printf(out, "verdict: %d/%d trials accept (missing votes: %d, quorum trials: %d, early trials: %d)\n",
		rep.Accepts, rep.Trials, rep.MissingVotes, rep.QuorumTrials, rep.EarlyTrials)
	printf(out, "transport: %d connections, %d frames, %d bytes, %d votes (%d duplicate, %d bad frames)\n",
		rep.Stats.Connections, rep.Stats.Frames, rep.Stats.Bytes,
		rep.Stats.Votes, rep.Stats.DuplicateVotes, rep.Stats.BadFrames)
	if rep.Stats.BatchFrames > 0 {
		printf(out, "batching: %d votes in %d batch frames (%d bytes saved by compression)\n",
			rep.Stats.BatchedVotes, rep.Stats.BatchFrames, rep.Stats.BytesSaved)
	}
	if rep.Stats.PartialFrames > 0 {
		printf(out, "aggregation: %d votes folded from %d partial frames (%d duplicate entries)\n",
			rep.Stats.PartialVotes, rep.Stats.PartialFrames, rep.Stats.DuplicatePartials)
	}
	if rep.Stats.EarlyClosed {
		printf(out, "session closed early: every verdict was fixed\n")
	}
	if rep.Stats.DeadlineExpired {
		printf(out, "WARNING: safety-net deadline expired before the protocol finished\n")
	}

	if *jsonFlag {
		doc := obs.Document{
			Provenance: prov,
			Results: map[string]any{
				"rule":    nw.Rule().Name(),
				"params":  params,
				"report":  rep,
				"input":   map[string]any{"dist": d.Name(), "n": *n, "l1_from_uniform": dist.L1FromUniform(d)},
				"faults":  plan,
				"policy":  pol.String(),
				"sketch":  *sketch,
				"early":   *early,
				"retries": *retries,
			},
		}
		if reg != nil {
			snap := reg.Snapshot()
			doc.Metrics = &snap
		}
		return doc.WriteJSON(stdout)
	}
	return nil
}

func printf(w io.Writer, format string, args ...any) {
	if w != nil {
		fmt.Fprintf(w, format, args...)
	}
}

// buildNetwork solves and builds the requested 0-round network, returning
// the solved parameter struct for the run document.
func buildNetwork(rule string, n, k int, eps float64) (*zeroround.Network, any, error) {
	switch rule {
	case "threshold":
		cfg, err := zeroround.SolveThreshold(n, k, eps)
		if err != nil {
			return nil, nil, err
		}
		nw, err := zeroround.BuildThreshold(cfg)
		return nw, cfg, err
	case "and":
		cfg, err := zeroround.SolveAND(n, k, eps, 1.0/3)
		if err != nil {
			return nil, nil, err
		}
		nw, err := zeroround.BuildAND(cfg)
		return nw, cfg, err
	default:
		return nil, nil, fmt.Errorf("unknown rule %q", rule)
	}
}

func buildDistribution(name string, n int, eps float64, seed uint64) (dist.Distribution, error) {
	switch name {
	case "uniform":
		return dist.NewUniform(n), nil
	case "twobump":
		if eps <= 0 || eps > 1 {
			eps = 1
		}
		return dist.NewTwoBump(n, eps, seed), nil
	case "zipf":
		return dist.NewZipf(n, 1.2), nil
	case "halfsupport":
		return dist.NewHalfSupport(n), nil
	default:
		return nil, fmt.Errorf("unknown distribution %q", name)
	}
}
