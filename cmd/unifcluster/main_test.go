package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunPipeSmoke(t *testing.T) {
	if err := run([]string{"-k", "30", "-n", "64", "-trials", "4", "-seed", "1"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunANDSmoke(t *testing.T) {
	if err := run([]string{"-rule", "and", "-k", "16", "-n", "1024", "-trials", "4", "-dist", "twobump", "-early"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunTCPSmoke(t *testing.T) {
	if err := run([]string{"-transport", "tcp", "-k", "20", "-n", "64", "-trials", "4"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunSketchSmoke(t *testing.T) {
	if err := run([]string{"-sketch", "-k", "30", "-n", "64", "-trials", "4"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunJSONDocument(t *testing.T) {
	journalPath := filepath.Join(t.TempDir(), "run.jsonl")
	var buf bytes.Buffer
	args := []string{"-k", "40", "-n", "64", "-trials", "6", "-seed", "7",
		"-dist", "twobump", "-drop", "0.1", "-json", "-journal", journalPath}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Provenance struct {
			Tool     string `json:"tool"`
			Mode     string `json:"mode"`
			Seed     uint64 `json:"seed"`
			Hostname string `json:"hostname"`
			PID      int    `json:"pid"`
		} `json:"provenance"`
		Results struct {
			Rule   string `json:"rule"`
			Policy string `json:"policy"`
			Report struct {
				K            int    `json:"k"`
				Trials       int    `json:"trials"`
				Verdicts     []bool `json:"verdicts"`
				MissingVotes int    `json:"missing_votes"`
				Stats        struct {
					Votes int `json:"votes"`
				} `json:"stats"`
			} `json:"report"`
			Faults *struct {
				Drop float64 `json:"Drop"`
			} `json:"faults"`
		} `json:"results"`
		Metrics *struct {
			Counters map[string]int64 `json:"counters"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("document not parseable: %v\n%s", err, buf.String())
	}
	if doc.Provenance.Tool != "unifcluster" || doc.Provenance.Mode != "pipe" || doc.Provenance.Seed != 7 {
		t.Errorf("provenance = %+v", doc.Provenance)
	}
	if doc.Provenance.Hostname == "" || doc.Provenance.PID <= 0 {
		t.Errorf("provenance missing host identity: hostname=%q pid=%d", doc.Provenance.Hostname, doc.Provenance.PID)
	}
	if doc.Results.Rule == "" || doc.Results.Policy != "observed" {
		t.Errorf("results = %+v", doc.Results)
	}
	rep := doc.Results.Report
	if rep.K != 40 || rep.Trials != 6 || len(rep.Verdicts) != 6 {
		t.Errorf("report = %+v", rep)
	}
	// The drop plan must lose votes, and the document must account for them.
	if rep.MissingVotes == 0 {
		t.Error("drop plan lost no votes")
	}
	if doc.Results.Faults == nil || doc.Results.Faults.Drop != 0.1 {
		t.Errorf("faults = %+v", doc.Results.Faults)
	}
	if doc.Metrics == nil {
		t.Fatal("metrics snapshot missing")
	}
	if doc.Metrics.Counters["cluster.votes"] == 0 || doc.Metrics.Counters["cluster.votes_missing"] == 0 {
		t.Errorf("cluster counters = %v", doc.Metrics.Counters)
	}

	data, err := os.ReadFile(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var ev struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad journal line %q: %v", line, err)
		}
		kinds[ev.Kind]++
	}
	if kinds["run_start"] != 1 || kinds["run_end"] != 1 || kinds["cluster_trial"] != 6 {
		t.Errorf("journal kinds = %v", kinds)
	}
}

func TestRunCleanJSONHasNoMissingVotes(t *testing.T) {
	// The CI loopback smoke relies on this shape: a fault-free fixed-seed
	// run reports zero missing votes and a full verdict vector.
	var buf bytes.Buffer
	if err := run([]string{"-k", "30", "-n", "64", "-trials", "5", "-seed", "3", "-json"}, &buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Results struct {
			Report struct {
				Trials       int    `json:"trials"`
				Verdicts     []bool `json:"verdicts"`
				MissingVotes int    `json:"missing_votes"`
			} `json:"report"`
		} `json:"results"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Results.Report.MissingVotes != 0 {
		t.Errorf("clean run lost %d votes", doc.Results.Report.MissingVotes)
	}
	if len(doc.Results.Report.Verdicts) != 5 {
		t.Errorf("verdicts = %v", doc.Results.Report.Verdicts)
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{name: "bad rule", args: []string{"-rule", "bogus"}, want: "unknown rule"},
		{name: "bad dist", args: []string{"-dist", "bogus"}, want: "unknown distribution"},
		{name: "bad transport", args: []string{"-transport", "bogus"}, want: "unknown transport"},
		{name: "bad policy", args: []string{"-policy", "bogus"}, want: "unknown policy"},
		{name: "sketch under and", args: []string{"-rule", "and", "-sketch", "-k", "16", "-n", "1024"}, want: "threshold rule"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args, io.Discard)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want %q", err, tc.want)
			}
		})
	}
}
