package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestRunPipeSmoke(t *testing.T) {
	if err := run([]string{"-k", "30", "-n", "64", "-trials", "4", "-seed", "1"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunANDSmoke(t *testing.T) {
	if err := run([]string{"-rule", "and", "-k", "16", "-n", "1024", "-trials", "4", "-dist", "twobump", "-early"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunTCPSmoke(t *testing.T) {
	if err := run([]string{"-transport", "tcp", "-k", "20", "-n", "64", "-trials", "4"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunSketchSmoke(t *testing.T) {
	if err := run([]string{"-sketch", "-k", "30", "-n", "64", "-trials", "4"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunJSONDocument(t *testing.T) {
	journalPath := filepath.Join(t.TempDir(), "run.jsonl")
	var buf bytes.Buffer
	args := []string{"-k", "40", "-n", "64", "-trials", "6", "-seed", "7",
		"-dist", "twobump", "-drop", "0.1", "-json", "-journal", journalPath}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Provenance struct {
			Tool     string `json:"tool"`
			Mode     string `json:"mode"`
			Seed     uint64 `json:"seed"`
			Hostname string `json:"hostname"`
			PID      int    `json:"pid"`
		} `json:"provenance"`
		Results struct {
			Rule   string `json:"rule"`
			Policy string `json:"policy"`
			Report struct {
				K            int    `json:"k"`
				Trials       int    `json:"trials"`
				Verdicts     []bool `json:"verdicts"`
				MissingVotes int    `json:"missing_votes"`
				Stats        struct {
					Votes int `json:"votes"`
				} `json:"stats"`
			} `json:"report"`
			Faults *struct {
				Drop float64 `json:"Drop"`
			} `json:"faults"`
		} `json:"results"`
		Metrics *struct {
			Counters map[string]int64 `json:"counters"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("document not parseable: %v\n%s", err, buf.String())
	}
	if doc.Provenance.Tool != "unifcluster" || doc.Provenance.Mode != "pipe" || doc.Provenance.Seed != 7 {
		t.Errorf("provenance = %+v", doc.Provenance)
	}
	if doc.Provenance.Hostname == "" || doc.Provenance.PID <= 0 {
		t.Errorf("provenance missing host identity: hostname=%q pid=%d", doc.Provenance.Hostname, doc.Provenance.PID)
	}
	if doc.Results.Rule == "" || doc.Results.Policy != "observed" {
		t.Errorf("results = %+v", doc.Results)
	}
	rep := doc.Results.Report
	if rep.K != 40 || rep.Trials != 6 || len(rep.Verdicts) != 6 {
		t.Errorf("report = %+v", rep)
	}
	// The drop plan must lose votes, and the document must account for them.
	if rep.MissingVotes == 0 {
		t.Error("drop plan lost no votes")
	}
	if doc.Results.Faults == nil || doc.Results.Faults.Drop != 0.1 {
		t.Errorf("faults = %+v", doc.Results.Faults)
	}
	if doc.Metrics == nil {
		t.Fatal("metrics snapshot missing")
	}
	if doc.Metrics.Counters["cluster.votes"] == 0 || doc.Metrics.Counters["cluster.votes_missing"] == 0 {
		t.Errorf("cluster counters = %v", doc.Metrics.Counters)
	}

	data, err := os.ReadFile(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var ev struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad journal line %q: %v", line, err)
		}
		kinds[ev.Kind]++
	}
	if kinds["run_start"] != 1 || kinds["run_end"] != 1 || kinds["cluster_trial"] != 6 {
		t.Errorf("journal kinds = %v", kinds)
	}
}

func TestRunCleanJSONHasNoMissingVotes(t *testing.T) {
	// The CI loopback smoke relies on this shape: a fault-free fixed-seed
	// run reports zero missing votes and a full verdict vector.
	var buf bytes.Buffer
	if err := run([]string{"-k", "30", "-n", "64", "-trials", "5", "-seed", "3", "-json"}, &buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Results struct {
			Report struct {
				Trials       int    `json:"trials"`
				Verdicts     []bool `json:"verdicts"`
				MissingVotes int    `json:"missing_votes"`
			} `json:"report"`
		} `json:"results"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Results.Report.MissingVotes != 0 {
		t.Errorf("clean run lost %d votes", doc.Results.Report.MissingVotes)
	}
	if len(doc.Results.Report.Verdicts) != 5 {
		t.Errorf("verdicts = %v", doc.Results.Report.Verdicts)
	}
}

// TestJournalCompleteOnStrictQuorumError pins the journal-flush ordering:
// a strict-quorum failure surfaces an error from run(), but the referee
// still delivered a fully decided report, and every trial line plus a
// run_end record carrying the error must reach the journal before run()
// returns. (Before the fix, the early error return truncated the journal
// right after run_start.)
func TestJournalCompleteOnStrictQuorumError(t *testing.T) {
	journalPath := filepath.Join(t.TempDir(), "strict.jsonl")
	args := []string{"-k", "60", "-n", "64", "-trials", "6", "-seed", "2",
		"-policy", "strict", "-drop", "0.15", "-fault-seed", "7", "-journal", journalPath}
	err := run(args, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "strict quorum") {
		t.Fatalf("err = %v, want a strict-quorum failure", err)
	}

	data, rerr := os.ReadFile(journalPath)
	if rerr != nil {
		t.Fatal(rerr)
	}
	kinds := map[string]int{}
	var endErr string
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var ev struct {
			Kind  string `json:"kind"`
			Error string `json:"error"`
		}
		if uerr := json.Unmarshal([]byte(line), &ev); uerr != nil {
			t.Fatalf("bad journal line %q: %v", line, uerr)
		}
		kinds[ev.Kind]++
		if ev.Kind == "run_end" {
			endErr = ev.Error
		}
	}
	if kinds["run_start"] != 1 || kinds["cluster_trial"] != 6 || kinds["run_end"] != 1 {
		t.Errorf("journal kinds = %v, want 1 run_start, 6 cluster_trial, 1 run_end", kinds)
	}
	if !strings.Contains(endErr, "strict quorum") {
		t.Errorf("run_end error = %q, want the strict-quorum failure recorded", endErr)
	}
}

// TestJournalHasLinkedSpans asserts a journaled run records the full causal
// span chain for at least one complete trial:
// referee.apply → node.send → node.sample → node.session, plus the
// referee.verdict span parented on the referee session.
func TestJournalHasLinkedSpans(t *testing.T) {
	journalPath := filepath.Join(t.TempDir(), "spans.jsonl")
	args := []string{"-k", "20", "-n", "64", "-trials", "3", "-seed", "9", "-journal", journalPath}
	if err := run(args, io.Discard); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	type span struct {
		Name   string         `json:"name"`
		Span   string         `json:"span"`
		Parent string         `json:"parent"`
		Attrs  map[string]any `json:"attrs"`
	}
	byID := map[string]span{}
	counts := map[string]int{}
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var ev struct {
			Kind string `json:"kind"`
			span
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad journal line %q: %v", line, err)
		}
		if ev.Kind != "span" {
			continue
		}
		byID[ev.Span] = ev.span
		counts[ev.Name]++
	}
	const k, trials = 20, 3
	if counts["referee.apply"] != k*trials {
		t.Fatalf("referee.apply spans = %d, want %d", counts["referee.apply"], k*trials)
	}
	if counts["referee.verdict"] != 1 || counts["referee.session"] != 1 {
		t.Fatalf("verdict/session spans = %d/%d, want 1/1", counts["referee.verdict"], counts["referee.session"])
	}
	// Walk every apply back to its node session: the chain must be intact
	// for all k*trials votes, which covers every full trial.
	for id, s := range byID {
		if s.Name != "referee.apply" {
			continue
		}
		send, ok := byID[s.Parent]
		if !ok || send.Name != "node.send" {
			t.Fatalf("apply span %s parent %q is %q, want node.send", id, s.Parent, send.Name)
		}
		sample, ok := byID[send.Parent]
		if !ok || sample.Name != "node.sample" {
			t.Fatalf("send span parent %q is %q, want node.sample", send.Parent, sample.Name)
		}
		if sess, ok := byID[sample.Parent]; !ok || sess.Name != "node.session" {
			t.Fatalf("sample span parent %q is %q, want node.session", sample.Parent, sess.Name)
		}
	}
	for _, s := range byID {
		if s.Name == "referee.verdict" {
			if p := byID[s.Parent]; p.Name != "referee.session" {
				t.Fatalf("referee.verdict parent is %q, want referee.session", p.Name)
			}
		}
	}
}

// metricValue extracts a gauge/counter sample with exactly the given name
// from a Prometheus text exposition, returning ok=false if absent.
func metricValue(body, name string) (float64, bool) {
	for _, line := range strings.Split(body, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			v, err := strconv.ParseFloat(fields[1], 64)
			if err == nil {
				return v, true
			}
		}
	}
	return 0, false
}

// TestObsServerLiveScrape is the telemetry-plane smoke: a TCP-loopback run
// with -obs-addr is scraped mid-flight — /metrics must show live vote
// counts and a nonzero votes/sec rate gauge, /runz and /healthz must
// answer — and the run document's report must be byte-identical to an
// identically-configured run without the obs server.
func TestObsServerLiveScrape(t *testing.T) {
	addrCh := make(chan string, 1)
	obsReady = func(addr string) { addrCh <- addr }
	defer func() { obsReady = func(string) {} }()

	// The delay plan stretches the run (seeded, delay-only — verdicts are
	// unaffected) so the scrape loop reliably lands mid-run.
	common := []string{"-transport", "tcp", "-k", "20", "-n", "64", "-trials", "10",
		"-seed", "5", "-delay", "40ms", "-json"}

	var obsOut bytes.Buffer
	runDone := make(chan error, 1)
	go func() {
		runDone <- run(append([]string{"-obs-addr", "127.0.0.1:0"}, common...), &obsOut)
	}()

	var addr string
	select {
	case addr = <-addrCh:
	case err := <-runDone:
		t.Fatalf("run finished before the obs server came up: %v", err)
	}

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	// Poll /metrics until votes flow; the delayed run gives us a wide
	// mid-run window.
	deadline := time.Now().Add(15 * time.Second)
	var votes, rate float64
	for {
		_, body := get("/metrics")
		v, _ := metricValue(body, "cluster_votes")
		r, _ := metricValue(body, "cluster_votes_per_sec")
		if v > 0 && r > 0 {
			votes, rate = v, r
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no live votes after 15s; last body:\n%s", body)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if votes <= 0 || rate <= 0 {
		t.Fatalf("votes=%g rate=%g, want both > 0", votes, rate)
	}

	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	code, body := get("/runz")
	if code != http.StatusOK {
		t.Fatalf("/runz = %d", code)
	}
	var runz map[string]any
	if err := json.Unmarshal([]byte(body), &runz); err != nil {
		t.Fatalf("/runz not JSON: %v\n%s", err, body)
	}
	if _, ok := runz["provenance"]; !ok {
		t.Fatalf("/runz missing provenance: %v", runz)
	}

	if err := <-runDone; err != nil {
		t.Fatal(err)
	}

	// The same configuration without the obs server must produce a
	// byte-identical report: telemetry export never touches verdicts.
	var plainOut bytes.Buffer
	if err := run(common, &plainOut); err != nil {
		t.Fatal(err)
	}
	report := func(raw []byte) json.RawMessage {
		var doc struct {
			Results struct {
				Report json.RawMessage `json:"report"`
			} `json:"results"`
		}
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatalf("run document not parseable: %v", err)
		}
		if len(doc.Results.Report) == 0 {
			t.Fatal("run document has no report")
		}
		return doc.Results.Report
	}
	if obsRep, plainRep := report(obsOut.Bytes()), report(plainOut.Bytes()); !bytes.Equal(obsRep, plainRep) {
		t.Fatalf("obs run report diverged from plain run:\nobs:   %s\nplain: %s", obsRep, plainRep)
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{name: "bad rule", args: []string{"-rule", "bogus"}, want: "unknown rule"},
		{name: "bad dist", args: []string{"-dist", "bogus"}, want: "unknown distribution"},
		{name: "bad transport", args: []string{"-transport", "bogus"}, want: "unknown transport"},
		{name: "bad policy", args: []string{"-policy", "bogus"}, want: "unknown policy"},
		{name: "sketch under and", args: []string{"-rule", "and", "-sketch", "-k", "16", "-n", "1024"}, want: "threshold rule"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args, io.Discard)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want %q", err, tc.want)
			}
		})
	}
}

// reportSansStats extracts the report from a -json run document and
// strips the transport stats, which legitimately differ between batched
// and unbatched executions. Everything else must match byte for byte.
func reportSansStats(t *testing.T, raw []byte) []byte {
	t.Helper()
	var doc struct {
		Results struct {
			Report map[string]json.RawMessage `json:"report"`
		} `json:"results"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("run document not parseable: %v", err)
	}
	if len(doc.Results.Report) == 0 {
		t.Fatal("run document has no report")
	}
	delete(doc.Results.Report, "stats")
	// early_trials records at which arriving vote each trial was fixed —
	// scheduling bookkeeping that varies even between identical runs.
	delete(doc.Results.Report, "early_trials")
	out, err := json.Marshal(doc.Results.Report)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestBatchedMatchesUnbatchedTCP is the CI loopback smoke for the
// high-throughput transport: 2000 nodes × 5 trials = 10^4 votes over real
// TCP sockets, batched+compressed versus per-frame. The decision-relevant
// report must be byte-identical, and the batched run must clear a
// conservative throughput floor (it typically runs orders of magnitude
// faster; the floor only catches pathological regressions, race-detector
// builds included).
func TestBatchedMatchesUnbatchedTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP batching smoke skipped in -short mode")
	}
	const votes = 2000 * 5
	base := []string{"-transport", "tcp", "-k", "2000", "-n", "1024", "-trials", "5", "-seed", "11", "-json"}
	var plain, batched bytes.Buffer
	if err := run(base, &plain); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := run(append(base, "-batch", "256", "-compress"), &batched); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if got, want := reportSansStats(t, batched.Bytes()), reportSansStats(t, plain.Bytes()); !bytes.Equal(got, want) {
		t.Fatalf("batched report diverged from unbatched:\nbatched:   %s\nunbatched: %s", got, want)
	}
	var doc struct {
		Provenance struct {
			Extra map[string]string `json:"extra"`
		} `json:"provenance"`
		Results struct {
			Report struct {
				Stats struct {
					Votes       int `json:"votes"`
					BatchFrames int `json:"batch_frames"`
				} `json:"stats"`
			} `json:"report"`
		} `json:"results"`
	}
	if err := json.Unmarshal(batched.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Results.Report.Stats.Votes != votes || doc.Results.Report.Stats.BatchFrames == 0 {
		t.Fatalf("batched run recorded %d votes in %d batch frames",
			doc.Results.Report.Stats.Votes, doc.Results.Report.Stats.BatchFrames)
	}
	if doc.Provenance.Extra["batch"] != "256" || doc.Provenance.Extra["compress"] != "true" {
		t.Fatalf("provenance did not record the transport shape: %v", doc.Provenance.Extra)
	}
	if rate := float64(votes) / elapsed.Seconds(); rate < 5_000 {
		t.Fatalf("batched TCP throughput %.0f votes/sec below the 5k floor", rate)
	}
}

// TestAggTreeMatchesFlatStarTCP is the CI loopback smoke for sharded
// aggregation: a 2-level TCP aggregator tree over 2000 nodes × 5 trials
// against the flat star. The decision-relevant report must be
// byte-identical — partial sums compose the same monoid the flat referee
// folds vote by vote — and the tree run must clear the same conservative
// throughput floor as the batching smoke.
func TestAggTreeMatchesFlatStarTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP aggregation smoke skipped in -short mode")
	}
	const votes = 2000 * 5
	base := []string{"-transport", "tcp", "-k", "2000", "-n", "1024", "-trials", "5", "-seed", "11", "-json"}
	var flat, tree bytes.Buffer
	if err := run(base, &flat); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := run(append(base, "-agg", "8", "-agg-depth", "2"), &tree); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if got, want := reportSansStats(t, tree.Bytes()), reportSansStats(t, flat.Bytes()); !bytes.Equal(got, want) {
		t.Fatalf("tree report diverged from flat star:\ntree: %s\nflat: %s", got, want)
	}
	var doc struct {
		Provenance struct {
			Extra map[string]string `json:"extra"`
		} `json:"provenance"`
		Results struct {
			Report struct {
				Stats struct {
					Votes         int `json:"votes"`
					PartialFrames int `json:"partial_frames"`
					PartialVotes  int `json:"partial_votes"`
				} `json:"stats"`
			} `json:"report"`
		} `json:"results"`
	}
	if err := json.Unmarshal(tree.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Results.Report.Stats.Votes != votes || doc.Results.Report.Stats.PartialFrames == 0 ||
		doc.Results.Report.Stats.PartialVotes != votes {
		t.Fatalf("tree run folded %d votes (%d via %d partial frames), want all %d via partials",
			doc.Results.Report.Stats.Votes, doc.Results.Report.Stats.PartialVotes,
			doc.Results.Report.Stats.PartialFrames, votes)
	}
	if doc.Provenance.Extra["agg_fanout"] != "8" || doc.Provenance.Extra["agg_depth"] != "2" {
		t.Fatalf("provenance did not record the topology: %v", doc.Provenance.Extra)
	}
	if rate := float64(votes) / elapsed.Seconds(); rate < 5_000 {
		t.Fatalf("aggregated TCP throughput %.0f votes/sec below the 5k floor", rate)
	}
}
