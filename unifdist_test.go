package unifdist_test

import (
	"fmt"
	"math"
	"testing"

	unifdist "github.com/unifdist/unifdist"
)

func TestFacadeThresholdEndToEnd(t *testing.T) {
	const (
		n   = 1 << 16
		k   = 8000
		eps = 1.0
	)
	cfg, err := unifdist.SolveThreshold(n, k, eps)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := unifdist.BuildThreshold(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := unifdist.NewRNG(1)
	accept, rejects := nw.Run(unifdist.NewUniform(n), r)
	if rejects < 0 || rejects > k {
		t.Fatalf("rejects = %d", rejects)
	}
	_ = accept
}

func TestFacadeDistributions(t *testing.T) {
	u := unifdist.NewUniform(100)
	tb := unifdist.NewTwoBump(100, 0.5, 1)
	if got := unifdist.L1(u, u); got != 0 {
		t.Errorf("L1(u,u) = %v", got)
	}
	if got := unifdist.L1FromUniform(tb); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("two-bump distance %v", got)
	}
	if got := unifdist.CollisionProbability(u); math.Abs(got-0.01) > 1e-12 {
		t.Errorf("χ(U₁₀₀) = %v", got)
	}
}

func TestFacadeCongestPackaging(t *testing.T) {
	g := unifdist.NewGrid(5, 8)
	tokens := make([]uint64, g.N())
	for i := range tokens {
		tokens[i] = uint64(i)
	}
	res, err := unifdist.RunTokenPackaging(g, tokens, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Discarded > 3 {
		t.Fatalf("discarded %d > τ−1", res.Discarded)
	}
}

func TestFacadeLocalMIS(t *testing.T) {
	g := unifdist.NewRing(12)
	res, err := unifdist.LubyMIS(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := unifdist.VerifyMIS(g, res.InMIS); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeEquality(t *testing.T) {
	e, err := unifdist.NewEquality(128, 0.01, 2)
	if err != nil {
		t.Fatal(err)
	}
	r := unifdist.NewRNG(9)
	x := make([]byte, 16)
	acc, err := e.Run(x, x, r)
	if err != nil {
		t.Fatal(err)
	}
	if !acc {
		t.Fatal("equal inputs rejected")
	}
}

func TestFacadeReduction(t *testing.T) {
	eta := []float64{0.5, 0.3, 0.2}
	f, err := unifdist.NewFilter(eta, 30)
	if err != nil {
		t.Fatal(err)
	}
	if f.OutputDomain() != 30 {
		t.Fatalf("output domain %d", f.OutputDomain())
	}
}

// ExampleSolveThreshold demonstrates resolving Theorem 1.2's parameters.
func ExampleSolveThreshold() {
	cfg, err := unifdist.SolveThreshold(1<<16, 8000, 1.0)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("samples per node: %d\n", cfg.SamplesPerNode)
	fmt.Printf("feasible: %v\n", cfg.Feasible)
	// Output:
	// samples per node: 22
	// feasible: true
}

// ExampleNewSingleCollision demonstrates the paper's core gap tester.
func ExampleNewSingleCollision() {
	sc, err := unifdist.NewSingleCollision(1<<16, 0.05, 1.0)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	r := unifdist.NewRNG(7)
	samples := unifdist.SampleN(unifdist.NewUniform(1<<16), sc.SampleSize(), r)
	fmt.Println("accepts distinct uniform samples:", sc.Test(samples))
	// Output:
	// accepts distinct uniform samples: true
}
