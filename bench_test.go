package unifdist_test

import (
	"io"
	"os"
	"testing"

	unifdist "github.com/unifdist/unifdist"
	"github.com/unifdist/unifdist/internal/experiment"
)

// The benchmarks below regenerate the experiment tables of DESIGN.md /
// EXPERIMENTS.md, one per reproduced theorem. Each benchmark iteration is
// one full quick-mode experiment; set UNIFDIST_BENCH_VERBOSE=1 to print the
// tables while benchmarking.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiment.Lookup(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	var out io.Writer = io.Discard
	if os.Getenv("UNIFDIST_BENCH_VERBOSE") != "" {
		out = os.Stdout
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl, err := e.Run(experiment.NewRunContext(experiment.Quick, uint64(i)+1))
		if err != nil {
			b.Fatal(err)
		}
		if err := tbl.Render(out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1GapTester(b *testing.B)      { benchExperiment(b, "E1") }
func BenchmarkE2ANDRule(b *testing.B)        { benchExperiment(b, "E2") }
func BenchmarkE3Threshold(b *testing.B)      { benchExperiment(b, "E3") }
func BenchmarkE4BelowBound(b *testing.B)     { benchExperiment(b, "E4") }
func BenchmarkE5Asymmetric(b *testing.B)     { benchExperiment(b, "E5") }
func BenchmarkE6TokenPackaging(b *testing.B) { benchExperiment(b, "E6") }
func BenchmarkE7Congest(b *testing.B)        { benchExperiment(b, "E7") }
func BenchmarkE8Local(b *testing.B)          { benchExperiment(b, "E8") }
func BenchmarkE9SMPEquality(b *testing.B)    { benchExperiment(b, "E9") }
func BenchmarkE10Baseline(b *testing.B)      { benchExperiment(b, "E10") }
func BenchmarkE11Reduction(b *testing.B)     { benchExperiment(b, "E11") }
func BenchmarkE12Ablation(b *testing.B)      { benchExperiment(b, "E12") }
func BenchmarkE13Theorem71(b *testing.B)     { benchExperiment(b, "E13") }
func BenchmarkE14SMPBaselines(b *testing.B)  { benchExperiment(b, "E14") }
func BenchmarkE15Placement(b *testing.B)     { benchExperiment(b, "E15") }

// Micro-benchmarks of the library's hot paths, for profiling regressions.

func BenchmarkSingleCollisionRun(b *testing.B) {
	const n = 1 << 20
	sc, err := unifdist.NewSingleCollision(n, 0.01, 1)
	if err != nil {
		b.Fatal(err)
	}
	u := unifdist.NewUniform(n)
	r := unifdist.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = unifdist.RunTester(sc, u, r)
	}
}

func BenchmarkThresholdNetworkTrial(b *testing.B) {
	const (
		n = 1 << 16
		k = 2000
	)
	cfg, err := unifdist.SolveThreshold(n, k, 1)
	if err != nil {
		b.Fatal(err)
	}
	nw, err := unifdist.BuildThreshold(cfg)
	if err != nil {
		b.Fatal(err)
	}
	u := unifdist.NewUniform(n)
	r := unifdist.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = nw.Run(u, r)
	}
}

func BenchmarkCongestUniformityRun(b *testing.B) {
	const (
		n = 1 << 12
		k = 400
	)
	p, err := unifdist.SolveCongestCalibrated(n, k, 1)
	if err != nil {
		b.Fatal(err)
	}
	g := unifdist.NewGrid(20, 20)
	u := unifdist.NewUniform(n)
	r := unifdist.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := unifdist.RunCongestOnDistribution(g, u, p, r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLubyMISGrid(b *testing.B) {
	g := unifdist.NewGrid(20, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := unifdist.LubyMIS(g, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEqualityProtocol(b *testing.B) {
	e, err := unifdist.NewEquality(1024, 0.01, 2)
	if err != nil {
		b.Fatal(err)
	}
	r := unifdist.NewRNG(1)
	x := make([]byte, 128)
	y := make([]byte, 128)
	y[5] = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(x, y, r); err != nil {
			b.Fatal(err)
		}
	}
}

// PR-2 hot-path kernels: batch sampling, scratch collision statistics, and
// the allocation-free network trial. BENCH_PR2.json records these (see
// cmd/benchjson); the *Scalar/Map counterparts live next to the kernels in
// internal/dist for before/after comparison.

func benchSampleInto(b *testing.B, d unifdist.Distribution) {
	buf := make([]int, 4096)
	r := unifdist.NewRNG(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		unifdist.SampleInto(d, buf, r)
	}
}

func BenchmarkSampleIntoUniform(b *testing.B) {
	benchSampleInto(b, unifdist.NewUniform(1<<20))
}

func BenchmarkSampleIntoTwoBump(b *testing.B) {
	benchSampleInto(b, unifdist.NewTwoBump(1<<20, 1, 7))
}

func BenchmarkSampleIntoHistogram(b *testing.B) {
	benchSampleInto(b, unifdist.NewZipf(1<<20, 1.1))
}

func BenchmarkHasCollisionScratch(b *testing.B) {
	const n = 1 << 16
	samples := make([]int, 256)
	unifdist.SampleInto(unifdist.NewUniform(n), samples, unifdist.NewRNG(1))
	sc := unifdist.NewCollisionScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sc.HasCollision(n, samples)
	}
}

func BenchmarkNetworkRun(b *testing.B) {
	const (
		n = 1 << 16
		k = 2000
	)
	cfg, err := unifdist.SolveThreshold(n, k, 1)
	if err != nil {
		b.Fatal(err)
	}
	nw, err := unifdist.BuildThreshold(cfg)
	if err != nil {
		b.Fatal(err)
	}
	u := unifdist.NewUniform(n)
	r := unifdist.NewRNG(1)
	sc := nw.NewScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = nw.RunWith(u, r, sc)
	}
}

func BenchmarkEstimateErrorParallel(b *testing.B) {
	const (
		n = 1 << 16
		k = 2000
	)
	cfg, err := unifdist.SolveThreshold(n, k, 1)
	if err != nil {
		b.Fatal(err)
	}
	nw, err := unifdist.BuildThreshold(cfg)
	if err != nil {
		b.Fatal(err)
	}
	u := unifdist.NewUniform(n)
	r := unifdist.NewRNG(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = nw.EstimateErrorParallel(u, true, 64, r)
	}
}
